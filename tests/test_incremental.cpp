// Streaming / incremental maintenance suite: after EVERY insert(), remove()
// and advance(), the session's maintained clustering (restricted to live
// slots) must be equivalent — in the dbscan/equivalence.hpp sense — to a
// from-scratch rtd::cluster() over the live points.  Core flags, cluster
// count and the noise set are deterministic and compared exactly; border
// membership is checked geometrically.  Covers every backend, the traversal
// widths of the tree backends, merge/split/promotion edge cases, the
// rebuild-threshold and tombstone (CompactedIndex) paths, snapshot
// isolation across mutations, and a seeded randomized mutation soak.
// Run under the `tsan`/`asan` presets for the sanitizer legs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "core/api.hpp"
#include "core/clusterer.hpp"
#include "data/generators.hpp"
#include "dbscan/equivalence.hpp"

namespace rtd {
namespace {

using geom::Vec3;
using index::IndexKind;

/// The session's clustering restricted to live slots, in slot order —
/// the object the oracle is compared against.
struct LiveView {
  std::vector<Vec3> points;
  std::vector<std::uint32_t> slot_of;  ///< live position -> slot id
  dbscan::Clustering clustering;
};

LiveView live_view(const Clusterer& session) {
  LiveView v;
  const std::span<const Vec3> pts = session.points();
  const ClusterResult& r = session.result();
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    if (!session.is_live(i)) continue;
    v.points.push_back(pts[i]);
    v.slot_of.push_back(i);
    v.clustering.labels.push_back(r.labels[i]);
    v.clustering.is_core.push_back(r.is_core[i]);
  }
  v.clustering.cluster_count = r.cluster_count;
  return v;
}

/// Structural invariants of the maintained result: sizes agree, the CSR
/// membership table matches the labels, dead slots sit in the noise bucket.
void expect_result_consistent(const Clusterer& session, const char* what) {
  const ClusterResult& r = session.result();
  const std::size_t n = session.size();
  ASSERT_EQ(r.labels.size(), n) << what;
  ASSERT_EQ(r.is_core.size(), n) << what;
  ASSERT_EQ(r.neighbor_counts.size(), n) << what;
  ASSERT_EQ(r.members.size(), n) << what;
  ASSERT_EQ(r.member_starts.size(),
            static_cast<std::size_t>(r.cluster_count) + 2)
      << what;
  std::vector<std::uint8_t> seen(n, 0);
  for (std::int32_t c = 0; c < static_cast<std::int32_t>(r.cluster_count);
       ++c) {
    for (const std::uint32_t m : r.members_of(c)) {
      EXPECT_EQ(r.labels[m], c) << what;
      EXPECT_TRUE(session.is_live(m)) << what << ": dead slot in cluster";
      seen[m] = 1;
    }
  }
  for (const std::uint32_t m : r.noise()) {
    EXPECT_EQ(r.labels[m], kNoise) << what;
    seen[m] = 1;
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 1),
            static_cast<std::ptrdiff_t>(n))
      << what << ": membership table does not cover every slot";
  std::size_t live = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (session.is_live(i)) {
      ++live;
    } else {
      EXPECT_EQ(r.labels[i], kNoise) << what << ": dead slot labeled";
      EXPECT_EQ(r.is_core[i], 0) << what << ": dead slot core";
    }
  }
  EXPECT_EQ(session.live_count(), live) << what;
}

/// The acceptance criterion: live-restricted session labels equivalent to a
/// from-scratch cluster() over the live points.
void expect_oracle_parity(const Clusterer& session, const char* what) {
  expect_result_consistent(session, what);
  const LiveView v = live_view(session);
  const float eps = session.result().eps;
  const std::uint32_t min_pts = session.result().min_pts;
  const ClusterResult oracle = cluster(v.points, eps, min_pts);
  ASSERT_EQ(v.clustering.labels.size(), oracle.labels.size()) << what;
  EXPECT_EQ(v.clustering.is_core, oracle.is_core)
      << what << ": core flags diverge from the from-scratch oracle";
  EXPECT_EQ(v.clustering.cluster_count, oracle.cluster_count) << what;
  for (std::size_t i = 0; i < oracle.labels.size(); ++i) {
    EXPECT_EQ(v.clustering.labels[i] == kNoise, oracle.labels[i] == kNoise)
        << what << ": noise set differs at live point " << i << " (slot "
        << v.slot_of[i] << ")";
  }
  const dbscan::Params params{eps, min_pts, IndexKind::kAuto};
  const auto eq = dbscan::check_equivalent(v.points, params,
                                           oracle.to_clustering(),
                                           v.clustering);
  EXPECT_TRUE(eq.equivalent) << what << ": " << eq.reason;
}

// ---------------------------------------------------------------------------
// Per-backend oracle parity: inserts, removals, interleavings.
// ---------------------------------------------------------------------------

TEST(IncrementalParity, InsertsMatchOracleOnEveryBackend) {
  const auto base = data::taxi_gps(1200, 101);
  const auto extra = data::taxi_gps(300, 102);
  for (const IndexKind kind : index::kAllIndexKinds) {
    Clusterer session(base.points, Options().with_backend(kind));
    (void)session.run(0.3f, 8);
    const std::span<const Vec3> add(extra.points);
    std::size_t expect_first = base.size();
    for (const std::size_t batch : {1UL, 49UL, 250UL}) {
      const std::size_t first = session.insert(
          add.subspan(expect_first - base.size(), batch));
      EXPECT_EQ(first, expect_first) << index::to_string(kind);
      expect_first += batch;
      EXPECT_EQ(session.size(), expect_first);
      EXPECT_EQ(session.live_count(), expect_first);
      EXPECT_TRUE(session.result().stats.incremental);
      expect_oracle_parity(session, index::to_string(kind));
    }
  }
}

TEST(IncrementalParity, RemovalsMatchOracleOnEveryBackend) {
  const auto base = data::taxi_gps(1200, 103);
  for (const IndexKind kind : index::kAllIndexKinds) {
    Clusterer session(base.points, Options().with_backend(kind));
    (void)session.run(0.3f, 8);
    // Three batches spread across the id space, including cluster interiors.
    std::uint32_t next = 1;
    for (const std::size_t batch : {1UL, 40UL, 200UL}) {
      std::vector<std::uint32_t> ids;
      for (std::size_t k = 0; k < batch; ++k, next += 5) {
        ids.push_back(next % static_cast<std::uint32_t>(base.size()));
        while (!session.is_live(ids.back())) {
          ids.back() = (ids.back() + 1) %
                       static_cast<std::uint32_t>(base.size());
        }
        // Regenerate on collision within the batch.
        for (std::size_t p = 0; p + 1 < ids.size(); ++p) {
          if (ids[p] == ids.back()) {
            ids.pop_back();
            --k;
            break;
          }
        }
      }
      session.remove(ids);
      EXPECT_EQ(session.size(), base.size()) << index::to_string(kind);
      expect_oracle_parity(session, index::to_string(kind));
    }
  }
}

TEST(IncrementalParity, WidthParityOnTreeBackends) {
  // Above rt::kWideBvhMinPrims so kWide/kQuantized exercise the SoA walk.
  const auto base = data::taxi_gps(6000, 104);
  const auto extra = data::taxi_gps(200, 105);
  for (const IndexKind kind : {IndexKind::kPointBvh, IndexKind::kBvhRt}) {
    for (const rt::TraversalWidth width :
         {rt::TraversalWidth::kBinary, rt::TraversalWidth::kWide,
          rt::TraversalWidth::kWideQuantized}) {
      Clusterer session(base.points,
                        Options().with_backend(kind).with_width(width));
      (void)session.run(0.25f, 10);
      (void)session.insert(extra.points);
      std::vector<std::uint32_t> ids;
      for (std::uint32_t id = 7; ids.size() < 150; id += 41) {
        ids.push_back(id % static_cast<std::uint32_t>(session.size()));
      }
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      session.remove(ids);
      expect_oracle_parity(session, index::to_string(kind));
    }
  }
}

TEST(IncrementalParity, SlidingWindowAdvanceMatchesWindowedBatch) {
  const auto stream = data::taxi_gps(2000, 106);
  const std::size_t window = 500;
  const std::size_t step = 125;
  const float eps = 0.3f;
  const std::uint32_t min_pts = 6;
  const std::span<const Vec3> all(stream.points);

  Clusterer session(all.subspan(0, window), Options());
  (void)session.run(eps, min_pts);
  expect_oracle_parity(session, "initial window");
  for (std::size_t start = step; start + window <= all.size();
       start += step) {
    (void)session.advance(all.subspan(start + window - step, step), step);
    EXPECT_EQ(session.live_count(), window);
    expect_oracle_parity(session, "advanced window");
    // The live set IS the window — so the oracle comparison above already
    // equals a from-scratch batch run over exactly these window points.
    const LiveView v = live_view(session);
    ASSERT_EQ(v.points.size(), window);
    for (std::size_t k = 0; k < window; ++k) {
      EXPECT_EQ(v.points[k], all[start + k]);
    }
  }
}

// ---------------------------------------------------------------------------
// Merge / split / promotion edge cases.
// ---------------------------------------------------------------------------

/// Two well-separated dense blobs plus helpers to bridge them.
std::vector<Vec3> two_blobs() {
  std::vector<Vec3> pts;
  for (int i = 0; i < 8; ++i) {
    pts.push_back({0.1f * static_cast<float>(i % 3),
                   0.1f * static_cast<float>(i / 3), 0.0f});
    pts.push_back({10.0f + 0.1f * static_cast<float>(i % 3),
                   0.1f * static_cast<float>(i / 3), 0.0f});
  }
  return pts;
}

TEST(IncrementalEdge, BridgeInsertMergesAndRemovalSplits) {
  Clusterer session(two_blobs(), Options());
  const float eps = 0.9f;
  (void)session.run(eps, 3);
  ASSERT_EQ(session.result().cluster_count, 2u);

  // A chain of points every 0.5 across the gap merges the blobs.
  std::vector<Vec3> bridge;
  for (float x = 0.5f; x < 10.0f; x += 0.5f) bridge.push_back({x, 0, 0});
  const std::size_t first = session.insert(bridge);
  EXPECT_EQ(session.result().cluster_count, 1u);
  expect_oracle_parity(session, "after bridge insert");

  // Cutting the chain in the middle splits the merged cluster again.
  std::vector<std::uint32_t> cut;
  for (std::uint32_t k = 8; k < 12; ++k) {
    cut.push_back(static_cast<std::uint32_t>(first) + k);
  }
  session.remove(cut);
  EXPECT_EQ(session.result().cluster_count, 2u);
  expect_oracle_parity(session, "after bridge cut");
}

TEST(IncrementalEdge, RemovingACoreDissolvesAMinimalCluster) {
  // Exactly min_pts mutually-close points: one removal demotes the rest.
  std::vector<Vec3> pts = {{0, 0, 0}, {0.1f, 0, 0}, {0, 0.1f, 0}};
  pts.push_back({50, 50, 0});  // far noise, keeps the index non-trivial
  Clusterer session(pts, Options());
  (void)session.run(0.2f, 3);
  ASSERT_EQ(session.result().cluster_count, 1u);
  session.remove(std::vector<std::uint32_t>{1});
  EXPECT_EQ(session.result().cluster_count, 0u);
  expect_oracle_parity(session, "dissolved cluster");
}

TEST(IncrementalEdge, InsertPromotesBorderAndCapturesOldNoise) {
  // p0-p1 within eps but below min_pts=3: both noise.  Inserting one point
  // near them promotes all three to core — old noise must join the new
  // cluster.
  std::vector<Vec3> pts = {{0, 0, 0}, {0.1f, 0, 0}, {30, 30, 0}};
  Clusterer session(pts, Options());
  (void)session.run(0.2f, 3);
  ASSERT_EQ(session.result().cluster_count, 0u);
  (void)session.insert(std::vector<Vec3>{{0.05f, 0.05f, 0}});
  EXPECT_EQ(session.result().cluster_count, 1u);
  EXPECT_NE(session.result().labels[0], kNoise);
  EXPECT_NE(session.result().labels[1], kNoise);
  expect_oracle_parity(session, "promotion");
}

TEST(IncrementalEdge, EmptySessionStreamsFromNothing) {
  Clusterer session(std::vector<Vec3>{}, Options());
  (void)session.run(0.3f, 4);
  EXPECT_EQ(session.result().cluster_count, 0u);
  const auto batch = data::taxi_gps(400, 107);
  const std::size_t first = session.insert(batch.points);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(session.live_count(), batch.size());
  expect_oracle_parity(session, "stream from empty");
}

TEST(IncrementalEdge, MutationsAfterSweepMaintainTheLastLadderEntry) {
  const auto base = data::taxi_gps(900, 108);
  Clusterer session(base.points, Options());
  const std::vector<float> ladder = {0.2f, 0.35f, 0.5f};
  (void)session.sweep(ladder, 6);
  EXPECT_EQ(session.result().eps, ladder.back());
  (void)session.insert(data::taxi_gps(60, 109).points);
  session.remove(std::vector<std::uint32_t>{3, 500, 899});
  expect_oracle_parity(session, "post-sweep stream");
}

// ---------------------------------------------------------------------------
// Rebuild-threshold and tombstone (CompactedIndex) paths.
// ---------------------------------------------------------------------------

TEST(IncrementalMaintenance, ThresholdCrossingRebuildsAndStaysConsistent) {
  const auto base = data::taxi_gps(200, 110);
  Clusterer session(base.points,
                    Options().with_backend(IndexKind::kPointBvh));
  (void)session.run(0.3f, 5);

  // Small batch: absorbed in place (threshold is max(64, live/8) = 64).
  (void)session.insert(data::taxi_gps(10, 111).points);
  EXPECT_FALSE(session.result().stats.index_rebuilt);
  expect_oracle_parity(session, "absorbed insert");

  // One big batch blows the budget: the session must rebuild.
  (void)session.insert(data::taxi_gps(100, 112).points);
  EXPECT_TRUE(session.result().stats.index_rebuilt);
  expect_oracle_parity(session, "threshold rebuild");

  // Past-threshold removals rebuild over the live set (CompactedIndex
  // underneath); follow-up small mutations absorb into it.
  std::vector<std::uint32_t> ids;
  for (std::uint32_t id = 0; id < 70; ++id) ids.push_back(id * 4);
  session.remove(ids);
  EXPECT_TRUE(session.result().stats.index_rebuilt);
  expect_oracle_parity(session, "tombstoned rebuild");
  (void)session.insert(data::taxi_gps(8, 113).points);
  EXPECT_FALSE(session.result().stats.index_rebuilt);
  session.remove(std::vector<std::uint32_t>{1, 5, 9});
  expect_oracle_parity(session, "absorb into compacted index");
}

TEST(IncrementalMaintenance, RerunAndRetargetAfterMutationsStayExact) {
  // run()/sweep() on a session with tombstones must cluster the live set
  // only — including on a rebuild-only backend, where the eps retarget
  // forces a fresh (compacted) build.
  const auto base = data::taxi_gps(800, 114);
  for (const IndexKind kind : {IndexKind::kGrid, IndexKind::kBvhRt}) {
    Clusterer session(base.points, Options().with_backend(kind));
    (void)session.run(0.3f, 6);
    std::vector<std::uint32_t> ids;
    for (std::uint32_t id = 2; id < 300; id += 3) ids.push_back(id);
    session.remove(ids);
    expect_oracle_parity(session, "after removals");
    (void)session.run(0.42f, 6);  // retarget with tombstones present
    EXPECT_FALSE(session.result().stats.incremental);
    expect_oracle_parity(session, "full rerun with tombstones");
    (void)session.insert(data::taxi_gps(40, 115).points);
    expect_oracle_parity(session, "stream after rerun");
  }
}

TEST(IncrementalMaintenance, SnapshotsAreIsolatedFromMutations) {
  const auto base = data::taxi_gps(600, 116);
  Clusterer session(base.points, Options().with_backend(IndexKind::kBvhRt));
  (void)session.run(0.3f, 6);
  const auto before = session.snapshot();
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->size(), base.size());

  const auto probe = Vec3{0.5f, 0.5f, 0.0f};
  const auto before_ids = before->query_neighbors(probe);
  (void)session.insert(data::taxi_gps(80, 117).points);
  session.remove(std::vector<std::uint32_t>{0, 10, 20});

  // The old epoch answers exactly as before the mutations...
  EXPECT_EQ(before->size(), base.size());
  EXPECT_EQ(before->query_neighbors(probe), before_ids);
  // ...and a fresh snapshot serves the post-mutation live set.
  const auto after = session.snapshot();
  EXPECT_EQ(after->size(), session.size());
  const auto after_ids = after->query_neighbors(probe);
  std::size_t live_hits = 0;
  const float eps2 = session.result().eps * session.result().eps;
  for (std::uint32_t j = 0; j < session.size(); ++j) {
    if (session.is_live(j) &&
        geom::distance_squared(probe, session.points()[j]) <= eps2) {
      ++live_hits;
    }
  }
  EXPECT_EQ(after_ids.size(), live_hits);
  expect_oracle_parity(session, "mutations under snapshots");
}

// ---------------------------------------------------------------------------
// Randomized mutation soak: seeded, oracle-checked after EVERY operation.
// ---------------------------------------------------------------------------

TEST(IncrementalSoak, SeededMutationStormMatchesOracleOnEveryBackend) {
  for (const IndexKind kind : index::kAllIndexKinds) {
    Rng rng(0xD15EA5E0 + static_cast<std::uint64_t>(kind));
    const auto base = data::taxi_gps(500, 118);
    Clusterer session(base.points, Options().with_backend(kind));
    float eps = 0.3f;
    (void)session.run(eps, 5);

    for (int op = 0; op < 24; ++op) {
      const std::uint64_t dice = rng.below(10);
      if (dice < 4) {  // insert a small cluster-ish batch
        std::vector<Vec3> batch;
        const float cx = rng.uniformf(0.0f, 10.0f);
        const float cy = rng.uniformf(0.0f, 10.0f);
        const std::size_t k = 1 + rng.below(30);
        for (std::size_t p = 0; p < k; ++p) {
          batch.push_back({cx + rng.uniformf(-0.4f, 0.4f),
                           cy + rng.uniformf(-0.4f, 0.4f), 0.0f});
        }
        (void)session.insert(batch);
      } else if (dice < 7) {  // remove random live ids
        std::vector<std::uint32_t> ids;
        const std::size_t want =
            1 + rng.below(std::min<std::uint64_t>(25,
                                                  session.live_count() - 1));
        while (ids.size() < want) {
          const auto id =
              static_cast<std::uint32_t>(rng.below(session.size()));
          if (session.is_live(id) &&
              std::find(ids.begin(), ids.end(), id) == ids.end()) {
            ids.push_back(id);
          }
        }
        session.remove(ids);
      } else if (dice < 9) {  // sliding advance
        std::vector<Vec3> batch;
        const std::size_t k = 1 + rng.below(15);
        for (std::size_t p = 0; p < k; ++p) {
          batch.push_back({rng.uniformf(0.0f, 10.0f),
                           rng.uniformf(0.0f, 10.0f), 0.0f});
        }
        const std::size_t expire =
            rng.below(std::min<std::uint64_t>(10, session.live_count()));
        (void)session.advance(batch, expire);
      } else {  // full re-run, sometimes at a new eps (retarget)
        eps = rng.coin() ? eps : rng.uniformf(0.2f, 0.5f);
        (void)session.run(eps, 5);
      }
      expect_oracle_parity(session, index::to_string(kind));
      if (::testing::Test::HasFailure()) return;  // first divergence only
    }
  }
}

// ---------------------------------------------------------------------------
// Error contract: every invalid call throws and leaves the session intact.
// ---------------------------------------------------------------------------

TEST(IncrementalErrors, MutationsNeedACurrentResult) {
  const auto base = data::taxi_gps(100, 119);
  Clusterer session(base.points, Options());
  EXPECT_THROW((void)session.insert(base.points), std::logic_error);
  EXPECT_THROW(session.remove(std::vector<std::uint32_t>{0}),
               std::logic_error);
  EXPECT_THROW((void)session.result(), std::logic_error);
  (void)session.run(0.3f, 4);
  (void)session.result();  // now fine
  (void)session.take_result();
  EXPECT_THROW((void)session.insert(base.points), std::logic_error);
  EXPECT_THROW((void)session.result(), std::logic_error);
  (void)session.run(0.3f, 4);  // a rerun restores the baseline
  (void)session.insert(std::vector<Vec3>{{0.5f, 0.5f, 0.0f}});
  expect_oracle_parity(session, "recovered after take_result");
}

TEST(IncrementalErrors, EarlyExitSessionsRefuseToStream) {
  const auto base = data::taxi_gps(300, 120);
  Clusterer session(base.points, Options()
                                     .with_backend(IndexKind::kPointBvh)
                                     .with_early_exit(true));
  (void)session.run(0.3f, 6);  // caches CAPPED counts
  EXPECT_THROW((void)session.insert(std::vector<Vec3>{{0, 0, 0}}),
               std::logic_error);
}

TEST(IncrementalErrors, TriangleSessionsRefuseToStream) {
  const auto base = data::taxi_gps(50, 121);
  Options o;
  o.geometry = core::GeometryMode::kTriangles;
  Clusterer session(base.points, o);
  EXPECT_THROW((void)session.insert(std::vector<Vec3>{{0, 0, 0}}),
               std::logic_error);
}

TEST(IncrementalErrors, InvalidBatchesThrowAndLeaveTheSessionUntouched) {
  const auto base = data::taxi_gps(200, 122);
  Clusterer session(base.points, Options());
  (void)session.run(0.3f, 5);
  const ClusterResult snapshot = session.result();

  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW((void)session.insert(std::vector<Vec3>{{nan, 0, 0}}),
               std::invalid_argument);
  EXPECT_THROW(session.remove(std::vector<std::uint32_t>{200}),
               std::invalid_argument);  // out of range
  EXPECT_THROW(session.remove(std::vector<std::uint32_t>{3, 7, 3}),
               std::invalid_argument);  // duplicate within the batch
  session.remove(std::vector<std::uint32_t>{11});
  EXPECT_THROW(session.remove(std::vector<std::uint32_t>{11}),
               std::invalid_argument);  // already removed
  EXPECT_THROW((void)session.advance({}, session.live_count() + 1),
               std::invalid_argument);  // expire > live
  EXPECT_THROW((void)session.is_live(12345), std::invalid_argument);
  EXPECT_THROW((void)session.query_neighbors(std::uint32_t{11}, 0.3f),
               std::invalid_argument);  // removed slot

  // The failed calls changed nothing beyond the one successful removal.
  EXPECT_EQ(session.size(), base.size());
  EXPECT_EQ(session.live_count(), base.size() - 1);
  for (std::size_t i = 0; i < snapshot.labels.size(); ++i) {
    if (i == 11) continue;
    EXPECT_EQ(session.result().is_core[i] != 0,
              snapshot.is_core[i] != 0 &&
                  session.result().neighbor_counts[i] + 1 >= 5);
  }
  expect_oracle_parity(session, "after rejected batches");
}

TEST(IncrementalErrors, NoOpMutationsAreFree) {
  const auto base = data::taxi_gps(150, 123);
  Clusterer session(base.points, Options());
  (void)session.run(0.3f, 5);
  const std::uint32_t clusters = session.result().cluster_count;
  EXPECT_EQ(session.insert({}), base.size());
  session.remove({});
  EXPECT_EQ(session.advance({}, 0), base.size());
  EXPECT_EQ(session.result().cluster_count, clusters);
  EXPECT_FALSE(session.result().stats.incremental);
}

}  // namespace
}  // namespace rtd
