#include "rt/tessellate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace rtd::rt {
namespace {

using geom::Triangle;
using geom::Vec3;

TEST(Icosphere, FaceCounts) {
  EXPECT_EQ(unit_icosphere(0).size(), 20u);
  EXPECT_EQ(unit_icosphere(1).size(), 80u);
  EXPECT_EQ(unit_icosphere(2).size(), 320u);
}

TEST(Icosphere, RejectsInvalidSubdivisions) {
  EXPECT_THROW(unit_icosphere(-1), std::invalid_argument);
  EXPECT_THROW(unit_icosphere(5), std::invalid_argument);
}

TEST(Icosphere, VerticesOnUnitSphere) {
  for (const int sub : {0, 1, 2}) {
    for (const auto& t : unit_icosphere(sub)) {
      EXPECT_NEAR(length(t.a), 1.0f, 1e-5f);
      EXPECT_NEAR(length(t.b), 1.0f, 1e-5f);
      EXPECT_NEAR(length(t.c), 1.0f, 1e-5f);
    }
  }
}

TEST(Icosphere, InsphereRadiusIncreasesWithSubdivision) {
  const float r0 = insphere_radius(unit_icosphere(0));
  const float r1 = insphere_radius(unit_icosphere(1));
  const float r2 = insphere_radius(unit_icosphere(2));
  EXPECT_LT(r0, r1);
  EXPECT_LT(r1, r2);
  EXPECT_GT(r0, 0.7f);   // icosahedron inradius ~ 0.7947
  EXPECT_LT(r2, 1.0f);   // always strictly inside the unit sphere
}

TEST(Icosphere, MeshIsWatertightByAreaHeuristic) {
  // Total solid angle check: sum of face areas should be close to the
  // sphere's surface area (from below, chords cut corners).
  for (const int sub : {1, 2}) {
    double area = 0.0;
    for (const auto& t : unit_icosphere(sub)) {
      area += 0.5 * static_cast<double>(length(cross(t.b - t.a, t.c - t.a)));
    }
    const double sphere_area = 4.0 * M_PI;
    EXPECT_LT(area, sphere_area);
    EXPECT_GT(area, sphere_area * 0.9);
  }
}

TEST(Tessellate, ProducesOneMeshPerCenter) {
  const std::vector<Vec3> centers{{0, 0, 0}, {5, 0, 0}, {0, 5, 0}};
  const auto mesh = tessellate_spheres(centers, 1.0f, 1);
  EXPECT_EQ(mesh.triangles_per_sphere, 80);
  EXPECT_EQ(mesh.triangles.size(), 3u * 80u);
  EXPECT_EQ(mesh.owners.size(), mesh.triangles.size());
  for (std::size_t i = 0; i < mesh.owners.size(); ++i) {
    EXPECT_EQ(mesh.owners[i], i / 80);
  }
}

TEST(Tessellate, RejectsNonPositiveRadius) {
  const std::vector<Vec3> centers{{0, 0, 0}};
  EXPECT_THROW(tessellate_spheres(centers, 0.0f, 1), std::invalid_argument);
  EXPECT_THROW(tessellate_spheres(centers, -1.0f, 1), std::invalid_argument);
  // NaN/inf radii would otherwise emit non-finite scale factors that poison
  // every BVH bound downstream.
  EXPECT_THROW(tessellate_spheres(
                   centers, std::numeric_limits<float>::quiet_NaN(), 1),
               std::invalid_argument);
  EXPECT_THROW(
      tessellate_spheres(centers, std::numeric_limits<float>::infinity(), 1),
      std::invalid_argument);
}

TEST(Tessellate, RejectsNegativeSubdivisions) {
  const std::vector<Vec3> centers{{0, 0, 0}};
  EXPECT_THROW(tessellate_spheres(centers, 1.0f, -1), std::invalid_argument);
  EXPECT_THROW(tessellate_spheres(centers, 1.0f, -7), std::invalid_argument);
}

TEST(Tessellate, EmptyCentersYieldEmptyWellFormedResult) {
  const std::vector<Vec3> centers;
  const auto mesh = tessellate_spheres(centers, 0.5f, 1);
  EXPECT_TRUE(mesh.triangles.empty());
  EXPECT_TRUE(mesh.owners.empty());
  // Metadata is still populated so callers can reason about the config.
  EXPECT_EQ(mesh.triangles_per_sphere, 80);
  EXPECT_GE(mesh.scale, 0.5f);
  EXPECT_TRUE(std::isfinite(mesh.scale));
}

TEST(InsphereRadius, RejectsDegenerateMeshes) {
  // Empty mesh: no face planes, no inradius — previously returned FLT_MAX
  // (scale ~ 0, collapsing all spheres to points).
  EXPECT_THROW(insphere_radius({}), std::invalid_argument);

  // All-degenerate mesh (zero-area faces): face normals are 0/0 = NaN,
  // which std::min silently ignored, leaving FLT_MAX again.
  const std::vector<Triangle> flat{
      {{1, 0, 0}, {1, 0, 0}, {1, 0, 0}},
      {{0, 1, 0}, {0, 1, 0}, {0, 1, 0}},
  };
  EXPECT_THROW(insphere_radius(flat), std::invalid_argument);

  // One degenerate face among valid ones still invalidates the mesh (its
  // plane distance is undefined, so the circumscription guarantee is off).
  auto mesh = unit_icosphere(0);
  mesh.push_back({{1, 0, 0}, {1, 0, 0}, {1, 0, 0}});
  EXPECT_THROW(insphere_radius(mesh), std::invalid_argument);

  // A face plane passing through the origin gives inradius 0 — the mesh
  // cannot circumscribe any sphere around the origin.
  const std::vector<Triangle> through_origin{
      {{1, 0, 0}, {0, 1, 0}, {-1, -1, 0}},
  };
  EXPECT_THROW(insphere_radius(through_origin), std::invalid_argument);
}

TEST(Tessellate, CircumscribesTrueSphere) {
  // Every point on the true ε-sphere must be inside the tessellated
  // polyhedron: a ray from such a point away from the center must cross a
  // triangle.  Sample random directions.
  const std::vector<Vec3> centers{{2, 3, 4}};
  const float radius = 0.7f;
  const auto mesh = tessellate_spheres(centers, radius, 1);
  EXPECT_GE(mesh.scale, radius);

  Rng rng(55);
  for (int trial = 0; trial < 500; ++trial) {
    Vec3 dir{static_cast<float>(rng.normal()),
             static_cast<float>(rng.normal()),
             static_cast<float>(rng.normal())};
    dir = normalized(dir);
    const Vec3 on_sphere = centers[0] + dir * radius;
    // Walk outward: must exit through the mesh within (scale - radius) + eps.
    const geom::Ray ray{on_sphere, dir, 0.0f,
                        1.05f * (mesh.scale - radius) + 1e-3f};
    bool hit = false;
    for (const auto& t : mesh.triangles) {
      if (geom::ray_intersects_triangle(ray, t)) {
        hit = true;
        break;
      }
    }
    EXPECT_TRUE(hit) << "sphere surface point escaped the tessellation, "
                     << "trial " << trial;
  }
}

TEST(Tessellate, PointQueryExitRayHitsOwnMesh) {
  // The exact geometry RT-DBSCAN's triangle mode relies on: a +z ray from a
  // point inside the true sphere must hit the sphere's tessellation within
  // tmax = 1.01 * (eps + scale).
  const float eps = 0.5f;
  Rng rng(56);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec3 center{rng.uniformf(-3, 3), rng.uniformf(-3, 3), 0.0f};
    const auto mesh = tessellate_spheres({&center, 1}, eps, 1);
    // Random query point strictly inside the true sphere (2-D plane).
    const float r = eps * static_cast<float>(rng.uniform());
    const float theta = rng.uniformf(0.0f, 6.2831853f);
    const Vec3 q = center + Vec3{r * std::cos(theta), r * std::sin(theta),
                                 0.0f};
    const geom::Ray ray{q, {0, 0, 1}, 0.0f, 1.01f * (eps + mesh.scale)};
    bool hit = false;
    for (const auto& t : mesh.triangles) {
      if (geom::ray_intersects_triangle(ray, t)) {
        hit = true;
        break;
      }
    }
    EXPECT_TRUE(hit) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rtd::rt
