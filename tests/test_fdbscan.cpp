#include "dbscan/fdbscan.hpp"

#include <gtest/gtest.h>

#include "data/generators.hpp"
#include "dbscan_test_util.hpp"

namespace rtd::dbscan {
namespace {

using testutil::expect_matches_reference;

TEST(Fdbscan, RejectsBadParams) {
  const std::vector<geom::Vec3> pts{{0, 0, 0}};
  EXPECT_THROW(fdbscan(pts, {0.0f, 3}), std::invalid_argument);
  EXPECT_THROW(fdbscan(pts, {1.0f, 0}), std::invalid_argument);
}

TEST(Fdbscan, EmptyInput) {
  const std::vector<geom::Vec3> pts;
  const auto r = fdbscan(pts, {1.0f, 3});
  EXPECT_EQ(r.clustering.size(), 0u);
}

TEST(Fdbscan, MatchesReferenceOnHandCheckedData) {
  const auto pts = testutil::two_squares_and_outlier();
  const Params params{1.5f, 3};
  const auto r = fdbscan(pts, params);
  expect_matches_reference(pts, params, r.clustering, "fdbscan");
  EXPECT_EQ(r.clustering.cluster_count, 2u);
}

TEST(Fdbscan, MatchesReferenceOnAmbiguousBorder) {
  const auto pts = testutil::ambiguous_border();
  const Params params{2.05f, 6};
  const auto r = fdbscan(pts, params);
  expect_matches_reference(pts, params, r.clustering, "fdbscan");
  // The bridge point is a border point of one of the two knots.
  EXPECT_FALSE(r.clustering.is_core[testutil::kAmbiguousBridgeIndex]);
  EXPECT_NE(r.clustering.labels[testutil::kAmbiguousBridgeIndex], kNoiseLabel);
}

class FdbscanDatasetTest
    : public ::testing::TestWithParam<std::tuple<data::PaperDataset, float,
                                                 std::uint32_t>> {};

TEST_P(FdbscanDatasetTest, MatchesReference) {
  const auto [which, eps, min_pts] = GetParam();
  const auto dataset = data::make_paper_dataset(which, 4000, 77);
  const Params params{eps, min_pts};
  const auto r = fdbscan(dataset.points, params);
  expect_matches_reference(dataset.points, params, r.clustering, "fdbscan");
}

INSTANTIATE_TEST_SUITE_P(
    PaperDatasets, FdbscanDatasetTest,
    ::testing::Values(
        std::make_tuple(data::PaperDataset::k3DRoad, 0.5f, 10u),
        std::make_tuple(data::PaperDataset::k3DRoad, 1.0f, 30u),
        std::make_tuple(data::PaperDataset::kPorto, 0.3f, 10u),
        std::make_tuple(data::PaperDataset::kPorto, 0.8f, 50u),
        std::make_tuple(data::PaperDataset::kNgsim, 0.05f, 10u),
        std::make_tuple(data::PaperDataset::k3DIono, 2.0f, 10u),
        std::make_tuple(data::PaperDataset::k3DIono, 4.0f, 40u)));

TEST(Fdbscan, EarlyExitProducesSameClustering) {
  const auto dataset = data::taxi_gps(5000, 31);
  const Params params{0.3f, 20};
  const auto full = fdbscan(dataset.points, params, FdbscanOptions::with_early_exit(false));
  const auto early = fdbscan(dataset.points, params, FdbscanOptions::with_early_exit(true));
  const auto eq = check_equivalent(dataset.points, params, full.clustering,
                                   early.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.reason;
}

TEST(Fdbscan, EarlyExitDoesLessPhase1Work) {
  // Dense data: early exit should cut primitive tests substantially.
  const auto dataset = data::single_blob(8000, 1.0f, 32);
  const Params params{0.5f, 10};
  const auto full = fdbscan(dataset.points, params, FdbscanOptions::with_early_exit(false));
  const auto early = fdbscan(dataset.points, params, FdbscanOptions::with_early_exit(true));
  EXPECT_LT(early.phase1_work.isect_calls, full.phase1_work.isect_calls / 2);
  // Phase 2 is identical (no early exit possible there).
  EXPECT_EQ(early.phase2_work.isect_calls, full.phase2_work.isect_calls);
}

TEST(Fdbscan, BothBuildersGiveEquivalentResults) {
  const auto dataset = data::road_network(3000, 33);
  const Params params{0.5f, 10};
  FdbscanOptions lbvh;
  lbvh.build.algorithm = rt::BuildAlgorithm::kLbvh;
  FdbscanOptions sah;
  sah.build.algorithm = rt::BuildAlgorithm::kBinnedSah;
  const auto a = fdbscan(dataset.points, params, lbvh);
  const auto b = fdbscan(dataset.points, params, sah);
  const auto eq =
      check_equivalent(dataset.points, params, a.clustering, b.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.reason;
}

TEST(Fdbscan, SingleThreadMatchesParallel) {
  const auto dataset = data::two_rings(3000, 34);
  const Params params{0.8f, 5};
  FdbscanOptions serial;
  serial.threads = 1;
  const auto a = fdbscan(dataset.points, params, serial);
  const auto b = fdbscan(dataset.points, params);
  const auto eq =
      check_equivalent(dataset.points, params, a.clustering, b.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.reason;
}

TEST(Fdbscan, ReportsTraversalWork) {
  const auto dataset = data::taxi_gps(2000, 35);
  const auto r = fdbscan(dataset.points, {0.3f, 10});
  EXPECT_EQ(r.phase1_work.rays, dataset.size());
  EXPECT_GT(r.phase1_work.nodes_visited, 0u);
  EXPECT_GT(r.phase1_work.isect_calls, 0u);
  // Phase 2 only launches traversals from core points.
  EXPECT_EQ(r.phase2_work.rays, r.clustering.core_count());
}

TEST(Fdbscan, TimingsPopulated) {
  const auto dataset = data::taxi_gps(2000, 36);
  const auto r = fdbscan(dataset.points, {0.3f, 10});
  const auto& t = r.clustering.timings;
  EXPECT_GT(t.index_build_seconds, 0.0);
  EXPECT_GT(t.core_phase_seconds, 0.0);
  EXPECT_GT(t.cluster_phase_seconds, 0.0);
  EXPECT_GE(t.total_seconds,
            t.index_build_seconds + t.clustering_seconds() - 1e-6);
}

}  // namespace
}  // namespace rtd::dbscan
