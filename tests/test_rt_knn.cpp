#include "core/rt_knn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "data/generators.hpp"

namespace rtd::core {
namespace {

using geom::Vec3;

/// Brute-force kNN reference (indices of the k nearest other points).
std::vector<std::uint32_t> brute_knn(std::span<const Vec3> points,
                                     std::uint32_t i, std::uint32_t k) {
  std::vector<std::pair<float, std::uint32_t>> d;
  d.reserve(points.size());
  for (std::uint32_t j = 0; j < points.size(); ++j) {
    if (j != i) {
      d.emplace_back(geom::distance_squared(points[i], points[j]), j);
    }
  }
  const std::size_t kk = std::min<std::size_t>(k, d.size());
  std::partial_sort(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(kk),
                    d.end());
  std::vector<std::uint32_t> out(kk);
  for (std::size_t h = 0; h < kk; ++h) out[h] = d[h].second;
  return out;
}

/// Compare by distance (tie-tolerant: equal k-th distances may legally pick
/// different indices).
void expect_knn_matches(std::span<const Vec3> points, const RtKnnResult& r,
                        std::uint32_t i) {
  const auto expected = brute_knn(points, i, r.k);
  const auto got_idx = r.neighbors_of(i);
  const auto got_dist = r.distances_of(i);
  ASSERT_GE(got_idx.size(), expected.size());
  for (std::size_t h = 0; h < expected.size(); ++h) {
    const float expected_d =
        geom::distance(points[i], points[expected[h]]);
    ASSERT_NE(got_idx[h], kNoSelf) << "point " << i << " rank " << h;
    EXPECT_NEAR(got_dist[h], expected_d, 1e-4f)
        << "point " << i << " rank " << h;
    EXPECT_NE(got_idx[h], i) << "self returned as neighbor";
  }
  // Distances ascending.
  for (std::size_t h = 1; h < expected.size(); ++h) {
    EXPECT_LE(got_dist[h - 1], got_dist[h] + 1e-6f);
  }
}

TEST(RtKnn, RejectsBadArguments) {
  const std::vector<Vec3> pts{{0, 0, 0}};
  EXPECT_THROW(rt_knn(pts, 0), std::invalid_argument);
  RtKnnOptions bad;
  bad.growth = 1.0f;
  EXPECT_THROW(rt_knn(pts, 3, bad), std::invalid_argument);
}

TEST(RtKnn, EmptyInput) {
  const std::vector<Vec3> pts;
  const auto r = rt_knn(pts, 3);
  EXPECT_TRUE(r.indices.empty());
}

TEST(RtKnn, TinyDatasetPadsWithSentinel) {
  const std::vector<Vec3> pts{{0, 0, 0}, {1, 0, 0}};
  const auto r = rt_knn(pts, 5);
  EXPECT_EQ(r.neighbors_of(0)[0], 1u);
  EXPECT_NEAR(r.distances_of(0)[0], 1.0f, 1e-6f);
  for (std::size_t h = 1; h < 5; ++h) {
    EXPECT_EQ(r.neighbors_of(0)[h], kNoSelf);
    EXPECT_TRUE(std::isinf(r.distances_of(0)[h]));
  }
}

TEST(RtKnn, MatchesBruteForceOnRandom2D) {
  const auto dataset = data::taxi_gps(2000, 201);
  const auto r = rt_knn(dataset.points, 8);
  for (std::uint32_t i = 0; i < dataset.size(); i += 23) {
    expect_knn_matches(dataset.points, r, i);
  }
}

TEST(RtKnn, MatchesBruteForceOnRandom3D) {
  const auto dataset = data::ionosphere3d(2000, 202);
  const auto r = rt_knn(dataset.points, 5);
  for (std::uint32_t i = 0; i < dataset.size(); i += 29) {
    expect_knn_matches(dataset.points, r, i);
  }
}

TEST(RtKnn, VariousK) {
  const auto dataset = data::gaussian_blobs(1000, 3, 1.0f, 20.0f, 2, 203);
  for (const std::uint32_t k : {1u, 2u, 10u, 50u}) {
    const auto r = rt_knn(dataset.points, k);
    EXPECT_EQ(r.k, k);
    for (std::uint32_t i = 0; i < dataset.size(); i += 97) {
      expect_knn_matches(dataset.points, r, i);
    }
  }
}

TEST(RtKnn, SkewedDensityConverges) {
  // One dense blob and far-flung sparse noise: sparse points need several
  // radius-doubling rounds.
  auto dataset = data::single_blob(1500, 0.5f, 204);
  Rng rng(205);
  for (int i = 0; i < 50; ++i) {
    dataset.points.push_back(
        geom::Vec3::xy(rng.uniformf(-500, 500), rng.uniformf(-500, 500)));
  }
  const auto r = rt_knn(dataset.points, 6);
  EXPECT_GT(r.rounds, 1);
  for (std::uint32_t i = 0; i < dataset.size(); i += 41) {
    expect_knn_matches(dataset.points, r, i);
  }
}

TEST(RtKnn, DuplicatePointsAreZeroDistanceNeighbors) {
  std::vector<Vec3> pts(6, Vec3::xy(3, 3));
  pts.push_back(Vec3::xy(100, 100));
  const auto r = rt_knn(pts, 3);
  for (std::size_t h = 0; h < 3; ++h) {
    EXPECT_EQ(r.distances_of(0)[h], 0.0f);
    EXPECT_NE(r.neighbors_of(0)[h], 0u);
  }
}

TEST(RtKnn, ReportsRoundsAndWork) {
  const auto dataset = data::taxi_gps(3000, 206);
  const auto r = rt_knn(dataset.points, 10);
  EXPECT_GE(r.rounds, 1);
  EXPECT_GT(r.launches.work.rays, 0u);
  EXPECT_GT(r.accel_build_seconds, 0.0);
}

TEST(RtKnn, ExplicitInitialRadiusHonored) {
  const auto dataset = data::taxi_gps(1000, 207);
  RtKnnOptions opts;
  opts.initial_radius = 1000.0f;  // covers everything: one round
  const auto r = rt_knn(dataset.points, 4, opts);
  EXPECT_EQ(r.rounds, 1);
  for (std::uint32_t i = 0; i < dataset.size(); i += 61) {
    expect_knn_matches(dataset.points, r, i);
  }
}

}  // namespace
}  // namespace rtd::core
