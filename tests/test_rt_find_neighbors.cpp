#include "core/rt_find_neighbors.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "data/generators.hpp"
#include "rt/context.hpp"

namespace rtd::core {
namespace {

using geom::Vec3;

std::set<std::uint32_t> brute_neighbors(std::span<const Vec3> points,
                                        const Vec3& q, float eps,
                                        std::uint32_t self) {
  std::set<std::uint32_t> out;
  const float e2 = eps * eps;
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    if (i != self && geom::distance_squared(q, points[i]) <= e2) {
      out.insert(i);
    }
  }
  return out;
}

TEST(RtFindNeighbors, RejectsNonPositiveRadius) {
  rt::Context ctx;
  EXPECT_THROW(ctx.build_spheres({{0, 0, 0}}, 0.0f), std::invalid_argument);
}

TEST(RtFindNeighbors, CountsMatchBruteForceOnRandom3D) {
  Rng rng(91);
  std::vector<Vec3> points;
  for (int i = 0; i < 4000; ++i) {
    points.push_back(Vec3{rng.uniformf(0, 10), rng.uniformf(0, 10),
                          rng.uniformf(0, 10)});
  }
  const float eps = 0.5f;
  rt::Context ctx;
  const auto accel = ctx.build_spheres(points, eps);

  rt::TraversalStats stats;
  for (std::uint32_t i = 0; i < points.size(); i += 13) {
    const auto expected = brute_neighbors(points, points[i], eps, i);
    EXPECT_EQ(rt_count_neighbors(accel, points[i], i, stats),
              expected.size())
        << "point " << i;
  }
}

TEST(RtFindNeighbors, CollectMatchesBruteForceIds) {
  const auto dataset = data::taxi_gps(3000, 92);
  const float eps = 0.3f;
  rt::Context ctx;
  const auto accel = ctx.build_spheres(dataset.points, eps);

  rt::TraversalStats stats;
  std::vector<std::uint32_t> got;
  for (std::uint32_t i = 0; i < dataset.size(); i += 17) {
    rt_collect_neighbors(accel, dataset.points[i], i, got, stats);
    const std::set<std::uint32_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set.size(), got.size()) << "duplicates for point " << i;
    EXPECT_EQ(got_set,
              brute_neighbors(dataset.points, dataset.points[i], eps, i));
  }
}

TEST(RtFindNeighbors, ExternalQueryPointNeedsNoSelfFilter) {
  const std::vector<Vec3> points{{0, 0, 0}, {1, 0, 0}, {5, 5, 0}};
  rt::Context ctx;
  const auto accel = ctx.build_spheres(points, 1.5f);
  rt::TraversalStats stats;
  // Query from a location that is not a dataset point.
  const Vec3 q{0.5f, 0.0f, 0.0f};
  EXPECT_EQ(rt_count_neighbors(accel, q, kNoSelf, stats), 2u);
}

TEST(RtFindNeighbors, SelfFilterExcludesExactlyTheQueryPoint) {
  // Duplicate coordinates: the self filter is by id, not by position.
  const std::vector<Vec3> points{{2, 2, 0}, {2, 2, 0}, {2, 2, 0}};
  rt::Context ctx;
  const auto accel = ctx.build_spheres(points, 0.5f);
  rt::TraversalStats stats;
  EXPECT_EQ(rt_count_neighbors(accel, points[0], 0, stats), 2u);
  EXPECT_EQ(rt_count_neighbors(accel, points[0], kNoSelf, stats), 3u);
}

TEST(RtFindNeighbors, BoundaryDistanceIsInclusive) {
  const std::vector<Vec3> points{{0, 0, 0}, {1, 0, 0}};
  rt::Context ctx;
  const auto accel = ctx.build_spheres(points, 1.0f);
  rt::TraversalStats stats;
  EXPECT_EQ(rt_count_neighbors(accel, points[0], 0, stats), 1u);
}

TEST(RtFindNeighbors, ForNeighborsVisitsEachOnce) {
  const auto dataset = data::road_network(2000, 93);
  const float eps = 0.5f;
  rt::Context ctx;
  const auto accel = ctx.build_spheres(dataset.points, eps);
  rt::TraversalStats stats;
  for (std::uint32_t i = 0; i < 50; ++i) {
    std::vector<std::uint32_t> seen;
    rt_for_neighbors(accel, dataset.points[i], i,
                     [&](std::uint32_t j) { seen.push_back(j); }, stats);
    std::set<std::uint32_t> unique(seen.begin(), seen.end());
    EXPECT_EQ(unique.size(), seen.size());
  }
}

TEST(RtFindNeighbors, IntersectionProgramCalledOnlyOnCandidates) {
  // The Intersection-call count must be >= the true neighbor count and
  // bounded by the primitive count (sanity of hardware counters).
  const auto dataset = data::taxi_gps(2000, 94);
  rt::Context ctx;
  const auto accel = ctx.build_spheres(dataset.points, 0.3f);
  rt::TraversalStats stats;
  const auto count =
      rt_count_neighbors(accel, dataset.points[0], 0, stats);
  EXPECT_GE(stats.isect_calls, count);
  EXPECT_LE(stats.isect_calls, dataset.size());
  EXPECT_EQ(stats.rays, 1u);
}

TEST(RtFindNeighbors, LaunchRunsAllRays) {
  const auto dataset = data::taxi_gps(5000, 95);
  const float eps = 0.3f;
  rt::Context ctx;
  const auto accel = ctx.build_spheres(dataset.points, eps);

  std::vector<std::uint32_t> counts(dataset.size());
  const rt::LaunchStats launch = ctx.launch(
      dataset.size(), [&](std::size_t i, rt::TraversalStats& st) {
        counts[i] = rt_count_neighbors(accel, dataset.points[i],
                                       static_cast<std::uint32_t>(i), st);
      });
  EXPECT_EQ(launch.work.rays, dataset.size());
  EXPECT_GT(launch.nodes_per_ray(), 0.0);
  EXPECT_GT(launch.isect_per_ray(), 0.0);
  EXPECT_GT(launch.seconds, 0.0);

  // Spot-check against brute force.
  Rng rng(96);
  for (int t = 0; t < 50; ++t) {
    const auto i = static_cast<std::uint32_t>(rng.below(dataset.size()));
    EXPECT_EQ(counts[i], brute_neighbors(dataset.points, dataset.points[i],
                                         eps, i)
                             .size());
  }
}

TEST(RtFindNeighbors, TwoDimensionalDataEmbedsCorrectly) {
  // 2-D points at z=0 with the paper's z-direction ray convention.
  const auto dataset = data::road_network(3000, 97);
  const float eps = 0.4f;
  rt::Context ctx;
  const auto accel = ctx.build_spheres(dataset.points, eps);
  rt::TraversalStats stats;
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(
        rt_count_neighbors(accel, dataset.points[i], i, stats),
        brute_neighbors(dataset.points, dataset.points[i], eps, i).size());
  }
}

}  // namespace
}  // namespace rtd::core
