// Exception-safety contracts of the session writer paths
// (docs/ARCHITECTURE.md, "Failure model").  The first half exercises the
// PRE-EXISTING error paths that need no fault injection (invalid arguments
// discovered late, take_result shells) and runs in every build; the second
// half uses the failpoint registry to force faults at specific sites and
// pins down which operations give the STRONG guarantee and which degrade
// then heal.  Failpoint-gated cases skip unless the build was configured
// with -DRTDBSCAN_FAILPOINTS=ON.
#include <gtest/gtest.h>

#include <cstdint>
#include <new>
#include <stdexcept>
#include <vector>

#include "common/failpoint.hpp"
#include "core/clusterer.hpp"
#include "data/generators.hpp"
#include "dbscan/equivalence.hpp"
#include "index/index_kind.hpp"

namespace rtd {
namespace {

using geom::Vec3;
using index::IndexKind;

dbscan::Clustering live_clustering(const Clusterer& s) {
  dbscan::Clustering c;
  const ClusterResult& r = s.result();
  for (std::uint32_t i = 0; i < s.size(); ++i) {
    if (!s.is_live(i)) continue;
    c.labels.push_back(r.labels[i]);
    c.is_core.push_back(r.is_core[i]);
  }
  c.cluster_count = r.cluster_count;
  return c;
}

std::vector<Vec3> live_points(const Clusterer& s) {
  std::vector<Vec3> pts;
  for (std::uint32_t i = 0; i < s.size(); ++i) {
    if (s.is_live(i)) pts.push_back(s.points()[i]);
  }
  return pts;
}

void expect_oracle_clean(const Clusterer& s, const char* what) {
  const ClusterResult& r = s.result();
  const dbscan::Params params{r.eps, r.min_pts, IndexKind::kAuto};
  const auto res =
      dbscan::check_valid(live_points(s), params, live_clustering(s));
  EXPECT_TRUE(res.equivalent) << what << ": " << res.reason;
}

// ---------------------------------------------------------------------------
// Always-on cases: invalid arguments discovered late must leave the session
// fully usable (strong guarantee through up-front validation).
// ---------------------------------------------------------------------------

TEST(ExceptionSafety, BadLadderValueMidSweepLeavesSessionRunnable) {
  const auto base = data::taxi_gps(300, 41);
  Clusterer session(base.points, Options());
  (void)session.run(0.3f, 5);
  const auto labels_before = session.result().labels;

  // The bad value sits LAST: a naive sweep would have clustered two good
  // entries before discovering it.  The ladder is validated up front, so
  // nothing runs and nothing is torn.
  const std::vector<float> bad_ladder{0.25f, 0.35f, -1.0f};
  EXPECT_THROW((void)session.sweep(bad_ladder, 5), std::invalid_argument);
  EXPECT_EQ(session.health(), SessionHealth::kHealthy);
  EXPECT_EQ(session.result().labels, labels_before);
  EXPECT_TRUE(session.validate(ValidationLevel::kDeep).ok);

  // The session still runs, sweeps, and mutates.
  (void)session.run(0.32f, 5);
  (void)session.insert(std::vector<Vec3>{{1.0f, 1.0f, 0.0f}});
  expect_oracle_clean(session, "after rejected sweep");

  // take_result() hands over a well-formed result and a rerun restores
  // the streaming baseline.
  const ClusterResult taken = session.take_result();
  EXPECT_EQ(taken.labels.size(), session.size());
  EXPECT_EQ(taken.member_starts.size(),
            static_cast<std::size_t>(taken.cluster_count) + 2);
  EXPECT_THROW((void)session.result(), std::logic_error);
  (void)session.run(0.3f, 5);
  expect_oracle_clean(session, "after take_result rerun");
}

TEST(ExceptionSafety, InvalidMutationArgumentsAreStrong) {
  const auto base = data::taxi_gps(200, 42);
  Clusterer session(base.points, Options());
  (void)session.run(0.3f, 5);
  const auto labels_before = session.result().labels;

  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_THROW((void)session.insert(std::vector<Vec3>{{inf, 0.0f, 0.0f}}),
               std::invalid_argument);
  EXPECT_THROW(session.remove(std::vector<std::uint32_t>{9999}),
               std::invalid_argument);
  EXPECT_THROW(session.remove(std::vector<std::uint32_t>{1, 1}),
               std::invalid_argument);
  EXPECT_EQ(session.health(), SessionHealth::kHealthy);
  EXPECT_EQ(session.result().labels, labels_before);
  EXPECT_TRUE(session.validate(ValidationLevel::kDeep).ok);
}

// ---------------------------------------------------------------------------
// Failpoint-gated cases: specific sites, specific guarantees.
// ---------------------------------------------------------------------------

class FailpointGated : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fail::compiled_in()) {
      GTEST_SKIP() << "build compiled without RTDBSCAN_FAILPOINTS=ON";
    }
    fail::disarm_all();
  }
  void TearDown() override {
    if (fail::compiled_in()) fail::disarm_all();
  }
};

TEST_F(FailpointGated, InsertCountFaultRollsBackStorageAndCounts) {
  const auto base = data::taxi_gps(200, 43);
  Clusterer session(base.points, Options());
  (void)session.run(0.3f, 5);
  const std::size_t n_before = session.size();
  const auto counts_before = session.result().neighbor_counts;

  fail::arm("engine.phase1_insert", {.action = fail::Action::kThrowBadAlloc});
  EXPECT_THROW(
      (void)session.insert(std::vector<Vec3>{{1.0f, 1.0f, 0.0f},
                                             {1.1f, 1.0f, 0.0f}}),
      std::bad_alloc);
  fail::disarm_all();

  // Strong: the absorbed points and their count updates are both gone.
  EXPECT_EQ(session.health(), SessionHealth::kHealthy);
  EXPECT_EQ(session.size(), n_before);
  EXPECT_EQ(session.result().neighbor_counts, counts_before);
  EXPECT_TRUE(session.validate(ValidationLevel::kDeep).ok);

  // And the session keeps streaming.
  (void)session.insert(std::vector<Vec3>{{1.0f, 1.0f, 0.0f}});
  expect_oracle_clean(session, "insert after rolled-back insert");
}

TEST_F(FailpointGated, RemovalCaptureFaultIsStrong) {
  const auto base = data::taxi_gps(200, 44);
  Clusterer session(base.points, Options());
  (void)session.run(0.3f, 5);
  const auto counts_before = session.result().neighbor_counts;

  fail::arm("engine.phase1_remove", {.action = fail::Action::kThrowError});
  EXPECT_THROW(session.remove(std::vector<std::uint32_t>{3, 7}),
               std::runtime_error);
  fail::disarm_all();

  EXPECT_EQ(session.health(), SessionHealth::kHealthy);
  EXPECT_TRUE(session.is_live(3));
  EXPECT_TRUE(session.is_live(7));
  EXPECT_EQ(session.result().neighbor_counts, counts_before);
  EXPECT_TRUE(session.validate(ValidationLevel::kDeep).ok);
  session.remove(std::vector<std::uint32_t>{3, 7});
  expect_oracle_clean(session, "remove after rolled-back remove");
}

TEST_F(FailpointGated, RepairFaultDegradesThenNextCallHeals) {
  const auto base = data::taxi_gps(200, 45);
  Clusterer session(base.points, Options());
  (void)session.run(0.3f, 5);

  fail::arm("repair.relabel", {.action = fail::Action::kThrowError});
  EXPECT_THROW((void)session.insert(std::vector<Vec3>{{2.0f, 2.0f, 0.0f}}),
               std::runtime_error);
  fail::disarm_all();

  // Degraded: the batch is committed (the slot exists) but the labels are
  // torn — result() is gated off while the bookkeeping stays sound.
  EXPECT_EQ(session.health(), SessionHealth::kDegraded);
  EXPECT_THROW((void)session.result(), std::logic_error);
  EXPECT_TRUE(session.validate(ValidationLevel::kQuick).ok);

  // The next writer call heals: here another mutation, which re-clusters
  // at the last requested parameters first and then applies its batch.
  (void)session.insert(std::vector<Vec3>{{2.1f, 2.0f, 0.0f}});
  EXPECT_EQ(session.health(), SessionHealth::kHealthy);
  EXPECT_TRUE(session.validate(ValidationLevel::kDeep).ok);
  expect_oracle_clean(session, "healed after repair fault");
}

TEST_F(FailpointGated, DeclinedAbsorptionFallsBackToRebuild) {
  const auto base = data::taxi_gps(200, 46);
  Clusterer session(base.points,
                    Options().with_backend(IndexKind::kPointBvh));
  (void)session.run(0.3f, 5);

  // Decline is not a fault: the index refuses the in-place absorb and the
  // session rebuilds — the mutation itself must succeed.
  fail::arm("index.insert", {.action = fail::Action::kDecline});
  (void)session.insert(std::vector<Vec3>{{1.0f, 1.0f, 0.0f}});
  fail::disarm_all();
  EXPECT_TRUE(session.result().stats.index_rebuilt);
  expect_oracle_clean(session, "declined insert absorb");

  fail::arm("index.refit", {.action = fail::Action::kDecline});
  (void)session.run(0.4f, 5);
  fail::disarm_all();
  EXPECT_TRUE(session.result().stats.index_rebuilt);
  expect_oracle_clean(session, "declined refit");
}

TEST_F(FailpointGated, MidSweepFaultDegradesKeepsCompletedPrefixSemantics) {
  const auto base = data::taxi_gps(250, 47);
  Clusterer session(base.points, Options());
  (void)session.run(0.3f, 5);

  // Fire on the SECOND phase-2 launch: entry 0 completes and commits,
  // entry 1 tears mid-rewrite.
  fail::arm("engine.phase2",
            {.action = fail::Action::kThrowError,
             .trigger = fail::Trigger::kOnHit,
             .n = 2});
  const std::vector<float> ladder{0.25f, 0.35f, 0.45f};
  EXPECT_THROW((void)session.sweep(ladder, 5), std::runtime_error);
  fail::disarm_all();

  EXPECT_EQ(session.health(), SessionHealth::kDegraded);
  EXPECT_TRUE(session.validate(ValidationLevel::kQuick).ok);

  // run() heals; the session then sweeps the same ladder cleanly and
  // take_result() is well-formed.
  (void)session.run(0.3f, 5);
  EXPECT_EQ(session.health(), SessionHealth::kHealthy);
  const auto results = session.sweep(ladder, 5);
  ASSERT_EQ(results.size(), ladder.size());
  expect_oracle_clean(session, "sweep after healed mid-sweep fault");
  const ClusterResult taken = session.take_result();
  EXPECT_EQ(taken.eps, ladder.back());
  EXPECT_EQ(taken.member_starts.size(),
            static_cast<std::size_t>(taken.cluster_count) + 2);
}

TEST_F(FailpointGated, SnapshotPublishFaultLeavesReadersRetryable) {
  const auto base = data::taxi_gps(150, 48);
  Clusterer session(base.points, Options());
  (void)session.run(0.3f, 5);

  fail::arm("session.publish", {.action = fail::Action::kThrowBadAlloc});
  EXPECT_THROW((void)session.snapshot(), std::bad_alloc);
  fail::disarm_all();

  // Nothing was published; the session is untouched and the retry works.
  EXPECT_EQ(session.health(), SessionHealth::kHealthy);
  const auto snap = session.snapshot();
  EXPECT_EQ(snap->size(), session.size());
  EXPECT_TRUE(session.validate(ValidationLevel::kDeep).ok);
}

}  // namespace
}  // namespace rtd
