// Session API suite: rtd::Clusterer must produce clusterings identical to
// fresh one-shot rtd::cluster() runs at every eps (for every backend and
// traversal width) while REUSING its index — refit, not rebuild, on the
// BVH-backed backends — and its structured results (membership views,
// RunStats, neighbor counts) must agree with the raw labels.
#include "core/clusterer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "core/api.hpp"
#include "data/generators.hpp"
#include "dbscan_test_util.hpp"

namespace rtd {
namespace {

using dbscan::Params;
using geom::Vec3;
using index::IndexKind;

/// "Identical clustering" in the DBSCAN sense (dbscan/equivalence.hpp):
/// exact core flags and cluster count, exact noise set (both are
/// deterministic given eps/minPts), and full equivalence — border points
/// may legally tie-break differently across runs on multi-core hosts.
void expect_identical_clustering(std::span<const Vec3> points,
                                 const Params& params,
                                 const ClusterResult& actual,
                                 const ClusterResult& expected,
                                 const char* what) {
  ASSERT_EQ(actual.labels.size(), expected.labels.size()) << what;
  EXPECT_EQ(actual.is_core, expected.is_core) << what;
  EXPECT_EQ(actual.cluster_count, expected.cluster_count) << what;
  for (std::size_t i = 0; i < actual.labels.size(); ++i) {
    EXPECT_EQ(actual.labels[i] == kNoise, expected.labels[i] == kNoise)
        << what << ": noise set differs at point " << i;
  }
  const auto eq = dbscan::check_equivalent(
      points, params, expected.to_clustering(), actual.to_clustering());
  EXPECT_TRUE(eq.equivalent) << what << ": " << eq.reason;
}

const std::vector<float> kSweepEps = {0.18f, 0.28f, 0.4f, 0.55f};

// ---------------------------------------------------------------------------
// Sweep parity: every backend, both sweep directions, the refit-vs-rebuild
// boundary asserted per backend.
// ---------------------------------------------------------------------------

TEST(ClustererSweep, MatchesOneShotClusterOnEveryBackend) {
  const auto dataset = data::taxi_gps(2500, 61);
  const std::uint32_t min_pts = 8;
  for (const IndexKind kind : index::kAllIndexKinds) {
    Clusterer session(dataset.points, Options().with_backend(kind));
    const auto curve = session.sweep(kSweepEps, min_pts);
    ASSERT_EQ(curve.size(), kSweepEps.size());
    const bool refittable = kind == IndexKind::kBvhRt ||
                            kind == IndexKind::kPointBvh ||
                            kind == IndexKind::kBruteForce;
    for (std::size_t s = 0; s < curve.size(); ++s) {
      const ClusterResult& r = curve[s];
      EXPECT_EQ(r.eps, kSweepEps[s]);
      EXPECT_EQ(r.min_pts, min_pts);
      EXPECT_EQ(r.stats.backend, kind);
      // Entry 0 carries the one index build (at ε_max) and the shared
      // counting launch; later entries never rebuild — they refit where
      // the backend supports it (try_set_eps) and otherwise reuse the
      // ε_max build outright (grid/dense-box serve radii below build ε).
      if (s == 0) {
        EXPECT_TRUE(r.stats.index_rebuilt) << index::to_string(kind);
        EXPECT_FALSE(r.stats.counts_reused) << index::to_string(kind);
        EXPECT_GT(r.stats.phase1.work.rays, 0u) << index::to_string(kind);
      } else {
        EXPECT_FALSE(r.stats.index_rebuilt)
            << index::to_string(kind) << " step " << s;
        EXPECT_EQ(r.stats.index_refitted, refittable)
            << index::to_string(kind) << " step " << s;
        EXPECT_TRUE(r.stats.counts_reused)
            << index::to_string(kind) << " step " << s;
        EXPECT_EQ(r.stats.phase1.work.rays, 0u);  // shared pass, not rerun
      }
      const ClusterResult fresh =
          cluster(dataset.points, kSweepEps[s], min_pts, kind);
      expect_identical_clustering(dataset.points,
                                  Params{kSweepEps[s], min_pts, kind}, r,
                                  fresh, index::to_string(kind));
    }
    // Descending re-sweep on the same session: same ε_max, so not even
    // entry 0 rebuilds this time, and parity is order-independent.
    std::vector<float> descending(kSweepEps.rbegin(), kSweepEps.rend());
    const auto down = session.sweep(descending, min_pts);
    for (std::size_t s = 0; s < down.size(); ++s) {
      EXPECT_FALSE(down[s].stats.index_rebuilt)
          << index::to_string(kind) << " re-sweep step " << s;
      const ClusterResult fresh =
          cluster(dataset.points, descending[s], min_pts, kind);
      expect_identical_clustering(dataset.points,
                                  Params{descending[s], min_pts, kind},
                                  down[s], fresh, index::to_string(kind));
    }
  }
}

TEST(ClustererSweep, MatchesOneShotAcrossTraversalWidths) {
  // 6000 points: above rt::kWideBvhMinPrims, so kAuto also resolves wide;
  // explicit widths are honored at any size.
  const auto dataset = data::taxi_gps(6000, 62);
  const std::uint32_t min_pts = 10;
  for (const IndexKind kind : {IndexKind::kPointBvh, IndexKind::kBvhRt}) {
    for (const rt::TraversalWidth width :
         {rt::TraversalWidth::kBinary, rt::TraversalWidth::kWide,
          rt::TraversalWidth::kWideQuantized, rt::TraversalWidth::kAuto}) {
      Clusterer session(dataset.points,
                        Options().with_backend(kind).with_width(width));
      const auto curve = session.sweep(kSweepEps, min_pts);
      for (std::size_t s = 0; s < curve.size(); ++s) {
        if (s == 0) {
          EXPECT_TRUE(curve[s].stats.index_rebuilt);
        } else {
          EXPECT_TRUE(curve[s].stats.index_refitted);
          EXPECT_FALSE(curve[s].stats.index_rebuilt);
        }
        const ClusterResult fresh =
            cluster(dataset.points, kSweepEps[s], min_pts, kind);
        expect_identical_clustering(
            dataset.points, Params{kSweepEps[s], min_pts, kind}, curve[s],
            fresh, rt::to_string(width));
      }
      // The resolved layout is reported: explicit requests are honored,
      // kAuto picks wide at this size.
      const rt::TraversalWidth reported = curve.back().stats.width;
      if (width == rt::TraversalWidth::kBinary) {
        EXPECT_EQ(reported, rt::TraversalWidth::kBinary);
      } else if (width == rt::TraversalWidth::kWideQuantized) {
        EXPECT_EQ(reported, rt::TraversalWidth::kWideQuantized);
      } else {
        EXPECT_EQ(reported, rt::TraversalWidth::kWide);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// min_pts reruns and the neighbor-count cache.
// ---------------------------------------------------------------------------

TEST(Clusterer, MinPtsRerunReusesCountsAndMatchesOneShot) {
  const auto dataset = data::taxi_gps(3000, 63);
  const float eps = 0.3f;
  Clusterer session(dataset.points);
  EXPECT_FALSE(session.counts_cached());
  (void)session.run(eps, 5);
  EXPECT_TRUE(session.counts_cached());
  for (const std::uint32_t min_pts : {20u, 3u, 50u}) {
    const ClusterResult& r = session.run(eps, min_pts);
    EXPECT_TRUE(r.stats.counts_reused) << min_pts;
    EXPECT_FALSE(r.stats.index_rebuilt);
    EXPECT_FALSE(r.stats.index_refitted);
    EXPECT_EQ(r.stats.phase1.work.rays, 0u);  // phase 1 did not run
    const ClusterResult fresh = cluster(dataset.points, eps, min_pts);
    expect_identical_clustering(dataset.points, Params{eps, min_pts}, r,
                                fresh, "minPts rerun");
  }
  // An eps change invalidates the cache...
  const ClusterResult& moved = session.run(eps * 1.3f, 5);
  EXPECT_FALSE(moved.stats.counts_reused);
  // ...and exact counts are cached again for the new eps.
  EXPECT_TRUE(session.counts_cached());
}

TEST(Clusterer, EarlyExitCapsCountsButReusesWhereValid) {
  const auto dataset = data::single_blob(2000, 0.5f, 64);
  const float eps = 0.4f;
  Clusterer session(dataset.points,
                    Options()
                        .with_backend(IndexKind::kPointBvh)
                        .with_early_exit(true));
  const ClusterResult& first = session.run(eps, 20);
  // Capped counts: nothing exceeds the cap by more than a traversal step
  // allows, and core flags are still exact.
  const ClusterResult fresh20 =
      cluster(dataset.points, eps, 20, IndexKind::kPointBvh);
  expect_identical_clustering(dataset.points,
                              Params{eps, 20, IndexKind::kPointBvh}, first,
                              fresh20, "early-exit first run");
  // Smaller min_pts is decidable from counts capped at 19 -> reuse.
  const ClusterResult& smaller = session.run(eps, 10);
  EXPECT_TRUE(smaller.stats.counts_reused);
  const ClusterResult fresh10 =
      cluster(dataset.points, eps, 10, IndexKind::kPointBvh);
  expect_identical_clustering(dataset.points,
                              Params{eps, 10, IndexKind::kPointBvh}, smaller,
                              fresh10, "early-exit smaller minPts");
  // Larger min_pts is NOT decidable from capped counts -> recompute.
  const ClusterResult& larger = session.run(eps, 40);
  EXPECT_FALSE(larger.stats.counts_reused);
  const ClusterResult fresh40 =
      cluster(dataset.points, eps, 40, IndexKind::kPointBvh);
  expect_identical_clustering(dataset.points,
                              Params{eps, 40, IndexKind::kPointBvh}, larger,
                              fresh40, "early-exit larger minPts");

  // The RT backend ignores the early-exit hint (OptiX) and counts exactly,
  // so even a LARGER min_pts reuses its cache.
  Clusterer rt_session(dataset.points, Options()
                                           .with_backend(IndexKind::kBvhRt)
                                           .with_early_exit(true));
  (void)rt_session.run(eps, 20);
  const ClusterResult& rt_larger = rt_session.run(eps, 40);
  EXPECT_TRUE(rt_larger.stats.counts_reused);
  const ClusterResult rt_fresh =
      cluster(dataset.points, eps, 40, IndexKind::kBvhRt);
  expect_identical_clustering(dataset.points,
                              Params{eps, 40, IndexKind::kBvhRt}, rt_larger,
                              rt_fresh, "rt exact counts despite early_exit");
}

// ---------------------------------------------------------------------------
// Structured results: membership views, counts, stats.
// ---------------------------------------------------------------------------

TEST(Clusterer, MembershipViewsAgreeWithLabels) {
  const auto dataset = data::gaussian_blobs(2200, 4, 0.6f, 25.0f, 2, 65);
  Clusterer session(dataset.points);
  const ClusterResult& r = session.run(0.5f, 8);
  ASSERT_GT(r.cluster_count, 0u);
  ASSERT_EQ(r.member_starts.size(), r.cluster_count + 2);
  ASSERT_EQ(r.members.size(), r.labels.size());

  std::vector<bool> seen(r.labels.size(), false);
  for (std::int32_t c = 0; c < static_cast<std::int32_t>(r.cluster_count);
       ++c) {
    const auto members = r.members_of(c);
    EXPECT_EQ(members.size(), static_cast<std::size_t>(std::count(
                                  r.labels.begin(), r.labels.end(), c)));
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    for (const std::uint32_t i : members) {
      EXPECT_EQ(r.labels[i], c);
      seen[i] = true;
    }
  }
  const auto noise = r.noise();
  EXPECT_EQ(noise.size(), r.noise_count());
  EXPECT_TRUE(std::is_sorted(noise.begin(), noise.end()));
  for (const std::uint32_t i : noise) {
    EXPECT_EQ(r.labels[i], kNoise);
    seen[i] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));

  // Out-of-range ids yield empty views, not UB.
  EXPECT_TRUE(r.members_of(-1).empty());
  EXPECT_TRUE(
      r.members_of(static_cast<std::int32_t>(r.cluster_count)).empty());
  EXPECT_EQ(r.core_count() + r.border_count() + r.noise_count(), r.size());
}

TEST(Clusterer, NeighborCountsAreExactWithoutEarlyExit) {
  const auto dataset = data::taxi_gps(900, 66);
  const float eps = 0.35f;
  Clusterer session(dataset.points);
  const ClusterResult& r = session.run(eps, 6);
  ASSERT_EQ(r.neighbor_counts.size(), dataset.size());
  const float eps2 = eps * eps;
  for (std::uint32_t i = 0; i < dataset.size(); i += 37) {
    std::uint32_t expected = 0;
    for (std::uint32_t j = 0; j < dataset.size(); ++j) {
      if (j != i &&
          geom::distance_squared(dataset.points[i], dataset.points[j]) <=
              eps2) {
        ++expected;
      }
    }
    EXPECT_EQ(r.neighbor_counts[i], expected) << i;
  }
}

TEST(Clusterer, AutoBackendIsResolvedReportedAndPinned) {
  const auto dataset = data::taxi_gps(3000, 67);
  Clusterer session(dataset.points);
  EXPECT_EQ(session.backend(), IndexKind::kAuto);  // not resolved yet
  EXPECT_EQ(session.current_eps(), std::nullopt);
  const ClusterResult& r = session.run(0.3f, 10);
  EXPECT_NE(r.stats.backend, IndexKind::kAuto);
  EXPECT_EQ(r.stats.backend, session.backend());
  EXPECT_EQ(session.current_eps(), 0.3f);
  const IndexKind pinned = session.backend();
  // The choice stays pinned across the sweep (comparable results).
  for (const ClusterResult& s : session.sweep(kSweepEps, 10)) {
    EXPECT_EQ(s.stats.backend, pinned);
  }
}

TEST(Clusterer, ResultCopiesAreIndependentSnapshots) {
  const auto dataset = data::taxi_gps(1200, 68);
  Clusterer session(dataset.points);
  const ClusterResult snapshot = session.run(0.3f, 5);  // deep copy
  const ClusterResult& second = session.run(0.6f, 5);
  EXPECT_EQ(snapshot.eps, 0.3f);
  EXPECT_EQ(second.eps, 0.6f);
  // The snapshot kept the first run's data even though the session's
  // internal result buffer was overwritten.
  const ClusterResult fresh = cluster(dataset.points, 0.3f, 5);
  expect_identical_clustering(dataset.points, Params{0.3f, 5}, snapshot,
                              fresh, "snapshot");
}

TEST(Clusterer, TakeResultRunTakeResultCycleYieldsIndependentResults) {
  // Regression: take_result() used to leave the session holding moved-from
  // buffers, so the NEXT run() could resize storage the taken result still
  // aliased conceptually — the cycle must produce two complete, fully
  // independent results.
  const auto dataset = data::taxi_gps(1100, 90);
  Clusterer session(dataset.points);
  (void)session.run(0.25f, 6);
  const ClusterResult first = session.take_result();
  ASSERT_EQ(first.labels.size(), dataset.size());
  ASSERT_EQ(first.members.size(), dataset.size());
  ASSERT_EQ(first.member_starts.size(), first.cluster_count + 2);
  EXPECT_EQ(first.eps, 0.25f);

  (void)session.run(0.5f, 6);
  const ClusterResult second = session.take_result();
  ASSERT_EQ(second.labels.size(), dataset.size());
  ASSERT_EQ(second.members.size(), dataset.size());
  ASSERT_EQ(second.member_starts.size(), second.cluster_count + 2);
  EXPECT_EQ(second.eps, 0.5f);

  // Both match their own fresh oracle — the second run did not recycle the
  // first result's (taken) storage into a partial result.
  expect_identical_clustering(dataset.points, Params{0.25f, 6}, first,
                              cluster(dataset.points, 0.25f, 6),
                              "taken first");
  expect_identical_clustering(dataset.points, Params{0.5f, 6}, second,
                              cluster(dataset.points, 0.5f, 6),
                              "taken second");

  // A stray second take without an intervening run: well-formed empty, not
  // moved-from remains with stale scalars.
  const ClusterResult stray = session.take_result();
  EXPECT_TRUE(stray.labels.empty());
  EXPECT_TRUE(stray.members.empty());
  EXPECT_EQ(stray.cluster_count, 0u);
  EXPECT_EQ(stray.eps, 0.0f);

  // And the session is still fully usable afterwards.
  const ClusterResult& again = session.run(0.25f, 6);
  expect_identical_clustering(dataset.points, Params{0.25f, 6}, again,
                              cluster(dataset.points, 0.25f, 6),
                              "run after takes");
}

TEST(ClustererSweep, DuplicateLadderValuesShareColumnsAndMatch) {
  // Duplicates are legal: each occurrence yields its own entry, in input
  // order, identical to a fresh run (internally they share ONE bucketing
  // column — this asserts the column mapping, not just the dedup).
  const auto dataset = data::taxi_gps(1000, 91);
  const std::vector<float> ladder = {0.3f, 0.45f, 0.3f, 0.2f, 0.45f};
  const std::uint32_t min_pts = 6;
  Clusterer session(dataset.points);
  const auto curve = session.sweep(ladder, min_pts);
  ASSERT_EQ(curve.size(), ladder.size());
  for (std::size_t s = 0; s < curve.size(); ++s) {
    EXPECT_EQ(curve[s].eps, ladder[s]);
    const ClusterResult fresh = cluster(dataset.points, ladder[s], min_pts);
    expect_identical_clustering(dataset.points, Params{ladder[s], min_pts},
                                curve[s], fresh, "duplicate ladder entry");
  }
  // Duplicate entries are bit-identical to each other (same column).
  EXPECT_EQ(curve[0].neighbor_counts, curve[2].neighbor_counts);
  EXPECT_EQ(curve[1].neighbor_counts, curve[4].neighbor_counts);
}

TEST(ClustererSweep, RejectsNonFiniteAndNonPositiveLadderValues) {
  // A NaN in the ladder must fail up front — NEVER drive max(eps_values)
  // (NaN poisons max_element) or size the bucketing scratch.
  const auto pts = testutil::two_squares_and_outlier();
  Clusterer session(pts);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_THROW((void)session.sweep(std::vector<float>{0.3f, nan, 0.5f}, 3),
               std::invalid_argument);
  EXPECT_THROW((void)session.sweep(std::vector<float>{0.3f, inf}, 3),
               std::invalid_argument);
  EXPECT_THROW((void)session.sweep(std::vector<float>{0.3f, 0.0f}, 3),
               std::invalid_argument);
  EXPECT_THROW((void)session.sweep(std::vector<float>{-0.3f}, 3),
               std::invalid_argument);
  EXPECT_THROW((void)session.sweep(std::vector<float>{0.3f}, 0),
               std::invalid_argument);
  // Validation happened before any state was touched: no index was built.
  EXPECT_EQ(session.current_eps(), std::nullopt);
  // An empty ladder is a no-op, not an error.
  EXPECT_TRUE(session.sweep(std::vector<float>{}, 3).empty());
}

// ---------------------------------------------------------------------------
// Passthrough queries: neighbors, k-dist, kNN.
// ---------------------------------------------------------------------------

TEST(Clusterer, QueryNeighborsMatchesBruteOracle) {
  const auto dataset = data::taxi_gps(1500, 69);
  Clusterer session(dataset.points,
                    Options().with_backend(IndexKind::kBvhRt));
  for (const float eps : {0.2f, 0.45f}) {  // second value forces a refit
    for (const std::uint32_t q : {0u, 700u, 1499u}) {
      const float eps2 = eps * eps;
      std::vector<std::uint32_t> expected;
      for (std::uint32_t j = 0; j < dataset.size(); ++j) {
        if (j != q &&
            geom::distance_squared(dataset.points[q], dataset.points[j]) <=
                eps2) {
          expected.push_back(j);
        }
      }
      EXPECT_EQ(session.query_neighbors(q, eps), expected) << q;
      // Center-based form includes q itself (off-dataset semantics).
      auto with_self = expected;
      with_self.push_back(q);
      std::sort(with_self.begin(), with_self.end());
      EXPECT_EQ(session.query_neighbors(dataset.points[q], eps), with_self);
    }
  }
  // The passthrough retargeted the index; clustering still works after.
  const ClusterResult& r = session.run(0.3f, 10);
  const ClusterResult fresh =
      cluster(dataset.points, 0.3f, 10, IndexKind::kBvhRt);
  expect_identical_clustering(dataset.points,
                              Params{0.3f, 10, IndexKind::kBvhRt}, r, fresh,
                              "after query_neighbors");
}

TEST(Clusterer, KdistAndKnnPassthrough) {
  const auto dataset = data::taxi_gps(800, 70);
  Clusterer session(dataset.points);
  const auto kd = session.kdist(4);
  const auto direct = core::kdist_graph(dataset.points, 4);
  EXPECT_EQ(kd.k, direct.k);
  EXPECT_EQ(kd.sorted_kdist, direct.sorted_kdist);
  EXPECT_EQ(kd.suggested_eps, direct.suggested_eps);
  EXPECT_GT(session.suggest_eps(4), 0.0f);
  // k = 0: the classic 2 * dims default (taxi data is flat -> 4).
  EXPECT_EQ(session.kdist().k, 4u);

  const auto nn = session.knn(3);
  EXPECT_EQ(nn.k, 3u);
  EXPECT_EQ(nn.indices.size(), dataset.size() * 3);
}

// ---------------------------------------------------------------------------
// Triangle geometry (§VI-C) sessions.
// ---------------------------------------------------------------------------

TEST(ClustererTriangle, SweepMatchesOneShotAndRefits) {
  const auto pts = data::taxi_gps(600, 71).points;
  const std::uint32_t min_pts = 5;
  Clusterer session(
      pts, Options().with_geometry(core::GeometryMode::kTriangles));
  const std::vector<float> eps_values = {0.25f, 0.35f, 0.5f};
  const auto curve = session.sweep(eps_values, min_pts);
  for (std::size_t s = 0; s < curve.size(); ++s) {
    const ClusterResult& r = curve[s];
    EXPECT_EQ(r.stats.geometry, core::GeometryMode::kTriangles);
    EXPECT_EQ(r.stats.backend, IndexKind::kBvhRt);
    EXPECT_EQ(r.stats.index_refitted, s > 0);  // rescale + refit, no rebuild
    core::RtDbscanOptions opts;
    opts.geometry = core::GeometryMode::kTriangles;
    const auto oracle =
        core::rt_dbscan(pts, Params{eps_values[s], min_pts}, opts);
    EXPECT_EQ(r.labels, oracle.clustering.labels);
    EXPECT_EQ(r.is_core, oracle.clustering.is_core);
    EXPECT_EQ(r.cluster_count, oracle.clustering.cluster_count);
  }
  // The accessor reports the resolved pipeline, not kAuto.
  EXPECT_EQ(session.backend(), IndexKind::kBvhRt);
  // min_pts rerun reuses the cached counts.
  (void)session.run(0.5f, min_pts);
  const ClusterResult& rerun = session.run(0.5f, min_pts * 2);
  EXPECT_TRUE(rerun.stats.counts_reused);
}

// ---------------------------------------------------------------------------
// Validation and edge cases.
// ---------------------------------------------------------------------------

TEST(Clusterer, RejectsInvalidArguments) {
  const auto pts = testutil::two_squares_and_outlier();
  Clusterer session(pts);
  EXPECT_THROW((void)session.run(0.0f, 3), std::invalid_argument);
  EXPECT_THROW((void)session.run(-1.0f, 3), std::invalid_argument);
  EXPECT_THROW((void)session.run(1.5f, 0), std::invalid_argument);
  // NaN/inf radii must fail loudly, not build a degenerate index.
  EXPECT_THROW((void)session.run(std::numeric_limits<float>::quiet_NaN(), 3),
               std::invalid_argument);
  EXPECT_THROW((void)session.run(std::numeric_limits<float>::infinity(), 3),
               std::invalid_argument);
  EXPECT_THROW((void)session.query_neighbors(Vec3{0, 0, 0}, 0.0f),
               std::invalid_argument);
  EXPECT_THROW((void)session.query_neighbors(999u, 1.0f),
               std::invalid_argument);
  // A non-finite CENTER is rejected too — and BEFORE the index is touched,
  // so a garbage request can never retarget the session to a degenerate ε.
  const Vec3 bad_center{std::numeric_limits<float>::quiet_NaN(), 0, 0};
  EXPECT_THROW((void)session.query_neighbors(bad_center, 0.5f),
               std::invalid_argument);
  EXPECT_THROW(
      (void)session.query_neighbors(Vec3{0, 0, 0},
                                    std::numeric_limits<float>::quiet_NaN()),
      std::invalid_argument);
  EXPECT_EQ(session.current_eps(), std::nullopt);  // index never built
  // Triangle geometry cannot run on a non-RT backend.
  EXPECT_THROW(Clusterer(pts, Options()
                                  .with_geometry(
                                      core::GeometryMode::kTriangles)
                                  .with_backend(IndexKind::kGrid)),
               std::invalid_argument);
  // Non-finite coordinates fail at construction.
  std::vector<Vec3> bad = pts;
  bad.push_back(Vec3{0.0f, std::numeric_limits<float>::quiet_NaN(), 0.0f});
  EXPECT_THROW(Clusterer{bad}, std::invalid_argument);
}

TEST(Clusterer, EmptyDataset) {
  Clusterer session((std::vector<Vec3>()));
  const ClusterResult& r = session.run(1.0f, 3);
  EXPECT_TRUE(r.labels.empty());
  EXPECT_TRUE(r.is_core.empty());
  EXPECT_EQ(r.cluster_count, 0u);
  EXPECT_TRUE(r.noise().empty());
  EXPECT_TRUE(r.members_of(0).empty());
  EXPECT_TRUE(session.sweep(kSweepEps, 3).size() == kSweepEps.size());
  EXPECT_TRUE(session.query_neighbors(Vec3{0, 0, 0}, 1.0f).empty());
}

TEST(Clusterer, OneShotWrapperStillWorksForEveryBackend) {
  // The legacy entry point is now a thin wrapper over a throwaway session;
  // its contract (tests/test_api.cpp) and backends must keep working.
  const auto dataset = data::two_rings(2000, 72);
  const Params params{0.8f, 5};
  for (const IndexKind kind : index::kAllIndexKinds) {
    const ClusterResult r =
        cluster(dataset.points, params.eps, params.min_pts, kind);
    testutil::expect_matches_reference(dataset.points, params,
                                       r.to_clustering(), "wrapper");
    EXPECT_EQ(r.stats.backend, kind);
    EXPECT_TRUE(r.stats.index_rebuilt);
  }
}

}  // namespace
}  // namespace rtd
