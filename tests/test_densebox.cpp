#include "dbscan/fdbscan_densebox.hpp"

#include <gtest/gtest.h>

#include "data/generators.hpp"
#include "dbscan_test_util.hpp"

namespace rtd::dbscan {
namespace {

using testutil::expect_matches_reference;

TEST(Densebox, RejectsBadParams) {
  const std::vector<geom::Vec3> pts{{0, 0, 0}};
  EXPECT_THROW(fdbscan_densebox(pts, {0.0f, 3}), std::invalid_argument);
  EXPECT_THROW(fdbscan_densebox(pts, {1.0f, 0}), std::invalid_argument);
}

TEST(Densebox, EmptyInput) {
  const std::vector<geom::Vec3> pts;
  const auto r = fdbscan_densebox(pts, {1.0f, 3});
  EXPECT_EQ(r.clustering.size(), 0u);
  EXPECT_EQ(r.dense_cells, 0u);
}

TEST(Densebox, MatchesReferenceOnHandCheckedData) {
  const auto pts = testutil::two_squares_and_outlier();
  const Params params{1.5f, 3};
  const auto r = fdbscan_densebox(pts, params);
  expect_matches_reference(pts, params, r.clustering, "densebox");
}

TEST(Densebox, MatchesReferenceOnAmbiguousBorder) {
  const auto pts = testutil::ambiguous_border();
  const Params params{2.05f, 6};
  const auto r = fdbscan_densebox(pts, params);
  expect_matches_reference(pts, params, r.clustering, "densebox");
}

TEST(Densebox, DenseCellMembersAreCoreWithoutQueries) {
  // 100 duplicate points: one dense cell, zero phase-1 traversal work for
  // them.
  std::vector<geom::Vec3> pts(100, geom::Vec3::xy(5, 5));
  pts.push_back(geom::Vec3::xy(50, 50));  // isolated noise point
  const Params params{1.0f, 10};
  const auto r = fdbscan_densebox(pts, params);
  EXPECT_GE(r.dense_cells, 1u);
  EXPECT_GE(r.dense_points, 100u);
  // Only the isolated point required a phase-1 query.
  EXPECT_EQ(r.phase1_work.rays, 1u);
  expect_matches_reference(pts, params, r.clustering, "densebox");
}

class DenseboxDatasetTest
    : public ::testing::TestWithParam<std::tuple<data::PaperDataset, float,
                                                 std::uint32_t>> {};

TEST_P(DenseboxDatasetTest, MatchesReference) {
  const auto [which, eps, min_pts] = GetParam();
  const auto dataset = data::make_paper_dataset(which, 4000, 88);
  const Params params{eps, min_pts};
  const auto r = fdbscan_densebox(dataset.points, params);
  expect_matches_reference(dataset.points, params, r.clustering, "densebox");
}

INSTANTIATE_TEST_SUITE_P(
    PaperDatasets, DenseboxDatasetTest,
    ::testing::Values(
        std::make_tuple(data::PaperDataset::k3DRoad, 0.5f, 10u),
        std::make_tuple(data::PaperDataset::k3DRoad, 1.5f, 40u),
        std::make_tuple(data::PaperDataset::kPorto, 0.3f, 10u),
        std::make_tuple(data::PaperDataset::kPorto, 0.8f, 50u),
        std::make_tuple(data::PaperDataset::kNgsim, 0.05f, 5u),
        std::make_tuple(data::PaperDataset::kNgsim, 0.8f, 60u),
        std::make_tuple(data::PaperDataset::k3DIono, 2.0f, 10u),
        std::make_tuple(data::PaperDataset::k3DIono, 5.0f, 50u)));

TEST(Densebox, SavesPhase1WorkOnDenseData) {
  // High-density blobs: many dense cells, so phase 1 launches far fewer
  // queries than plain FDBSCAN.
  const auto dataset = data::single_blob(10000, 0.3f, 89);
  const Params params{0.2f, 10};
  const auto db = fdbscan_densebox(dataset.points, params);
  const auto fd = fdbscan(dataset.points, params);
  EXPECT_GT(db.dense_points, dataset.size() / 2);
  EXPECT_LT(db.phase1_work.rays, fd.phase1_work.rays / 2);
  const auto eq = check_equivalent(dataset.points, params, fd.clustering,
                                   db.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.reason;
}

TEST(Densebox, NoDenseCellsOnSparseUniformData) {
  // The paper's rationale for not benchmarking it: "in the absence of such
  // regions, performance remains the same or is worse."
  const auto dataset = data::uniform_cube(5000, 500.0f, 2, 90);
  const Params params{1.0f, 20};
  const auto r = fdbscan_densebox(dataset.points, params);
  EXPECT_EQ(r.dense_cells, 0u);
  EXPECT_EQ(r.phase1_work.rays, dataset.size());
  expect_matches_reference(dataset.points, params, r.clustering, "densebox");
}

TEST(Densebox, SingleThreadMatchesParallel) {
  const auto dataset = data::taxi_gps(3000, 91);
  const Params params{0.3f, 10};
  FdbscanOptions serial;
  serial.threads = 1;
  const auto a = fdbscan_densebox(dataset.points, params, serial);
  const auto b = fdbscan_densebox(dataset.points, params);
  const auto eq =
      check_equivalent(dataset.points, params, a.clustering, b.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.reason;
}

TEST(Densebox, ThreeDimensionalDenseCells) {
  const auto dataset = data::gaussian_blobs(8000, 2, 0.2f, 10.0f, 3, 92);
  const Params params{0.5f, 15};
  const auto r = fdbscan_densebox(dataset.points, params);
  EXPECT_GT(r.dense_cells, 0u);
  expect_matches_reference(dataset.points, params, r.clustering, "densebox");
}

}  // namespace
}  // namespace rtd::dbscan
