// Shared fixtures for the DBSCAN implementation tests: tiny hand-checked
// datasets, brute-force classification, and the standard "equivalent to the
// sequential reference" assertion.
#pragma once

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "dbscan/core.hpp"
#include "dbscan/equivalence.hpp"
#include "dbscan/sequential.hpp"
#include "geom/vec3.hpp"

namespace rtd::testutil {

using dbscan::Clustering;
using dbscan::Params;
using geom::Vec3;

/// Two well-separated 2-D squares of 4 points each, plus one far outlier.
/// With eps=1.5, minPts=3: two clusters of 4, one noise point.
inline std::vector<Vec3> two_squares_and_outlier() {
  return {
      Vec3::xy(0, 0), Vec3::xy(1, 0), Vec3::xy(0, 1), Vec3::xy(1, 1),
      Vec3::xy(10, 10), Vec3::xy(11, 10), Vec3::xy(10, 11), Vec3::xy(11, 11),
      Vec3::xy(100, 100),
  };
}

/// A chain of points spaced 1 apart; with eps=1.1, minPts=3 all interior
/// points are core and the chain is one cluster.
inline std::vector<Vec3> chain(int n) {
  std::vector<Vec3> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back(Vec3::xy(static_cast<float>(i), 0.0f));
  }
  return pts;
}

/// A bridge dataset with a genuinely ambiguous border point.  Two vertical
/// 12-point chains (spacing 0.5) at x=0 and x=4, plus a bridge point at
/// (2, 0).  With eps=2.05, minPts=6:
///  * chain points at y=0 reach 5 chain members (incl. self) + the bridge
///    = 6 -> core;
///  * the bridge reaches exactly the two y=0 points (distance 2.0) + itself
///    = 3 -> NOT core, but a border point adjacent to cores of BOTH
///    clusters — the ambiguous case Alg. 3's critical section arbitrates.
/// The bridge is the last point, index kAmbiguousBridgeIndex.
inline constexpr std::size_t kAmbiguousBridgeIndex = 24;

inline std::vector<Vec3> ambiguous_border() {
  std::vector<Vec3> pts;
  for (int k = 0; k < 2; ++k) {
    const float x = static_cast<float>(k) * 4.0f;
    for (int i = 0; i < 12; ++i) {
      pts.push_back(Vec3::xy(x, static_cast<float>(i) * 0.5f));
    }
  }
  pts.push_back(Vec3::xy(2.0f, 0.0f));
  return pts;
}

/// Assert that `actual` is an equivalent clustering to the sequential
/// reference on `points`.
inline void expect_matches_reference(std::span<const Vec3> points,
                                     const Params& params,
                                     const Clustering& actual,
                                     const char* what) {
  const Clustering reference = dbscan::sequential_dbscan(points, params);
  const auto eq =
      dbscan::check_equivalent(points, params, reference, actual);
  EXPECT_TRUE(eq.equivalent)
      << what << " differs from sequential reference: " << eq.reason
      << " (n=" << points.size() << ", eps=" << params.eps
      << ", minPts=" << params.min_pts << ")";
}

}  // namespace rtd::testutil
