#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "common/cli.hpp"
#include "common/flags.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace rtd {
namespace {

// Prevents the optimizer from discarding a computed value.
void benchmark_sink(double v) {
  asm volatile("" : : "g"(v) : "memory");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.next_u64() == b.next_u64());
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(6);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.add(rng.uniform());
  EXPECT_NEAR(stat.mean(), 0.5, 0.01);
}

TEST(Rng, BelowIsBoundedAndCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(9);
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) stat.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stat.mean(), 10.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(10);
  Rng child = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.next_u64() == child.next_u64());
  }
  EXPECT_EQ(same, 0);
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(Percentile, InterpolatesCorrectly) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog",        "positional", "--n",      "100",
                        "--eps=0.5",   "--verbose",  "--threads", "8"};
  Flags flags(8, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(flags.get_double("eps", 0.0), 0.5);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_int("threads", 0), 8);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
  EXPECT_EQ(flags.program(), "prog");
}

TEST(Flags, BareFlagConsumesFollowingValueToken) {
  // `--verbose positional` is parsed as --verbose=positional: documented
  // behaviour of the value-greedy `--name value` form.
  const char* argv[] = {"prog", "--verbose", "positional"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.get("verbose", ""), "positional");
  EXPECT_TRUE(flags.positional().empty());
}

TEST(Flags, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_FALSE(flags.has("missing"));
  EXPECT_EQ(flags.get("missing", "dflt"), "dflt");
  EXPECT_EQ(flags.get_int("missing", -7), -7);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(flags.get_bool("missing", false));
  EXPECT_TRUE(flags.get_bool("missing", true));
}

TEST(Flags, BooleanValueForms) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c"};
  Flags flags(4, const_cast<char**>(argv));
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_TRUE(flags.get_bool("c", false));
}

TEST(Cli, BackendAndWidthFlagsParseShareOneSpelling) {
  // The shared helpers are the single source of truth for the --backend /
  // --width CLI spellings across examples and benches.
  const char* argv[] = {"prog", "--backend", "pointbvh", "--width",
                        "quantized"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(cli::backend_flag(flags), index::IndexKind::kPointBvh);
  EXPECT_EQ(cli::width_flag(flags), rt::TraversalWidth::kWideQuantized);

  const char* none[] = {"prog"};
  Flags empty(1, const_cast<char**>(none));
  EXPECT_EQ(cli::backend_flag(empty), index::IndexKind::kAuto);
  EXPECT_EQ(cli::backend_flag(empty, index::IndexKind::kGrid),
            index::IndexKind::kGrid);
  EXPECT_EQ(cli::width_flag(empty), rt::TraversalWidth::kAuto);

  const char* bad[] = {"prog", "--backend=kdtree", "--width=narrow"};
  Flags unknown(3, const_cast<char**>(bad));
  EXPECT_EQ(cli::backend_flag(unknown), std::nullopt);
  EXPECT_EQ(cli::width_flag(unknown), std::nullopt);
}

TEST(Table, FormatsCells) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(-42), "-42");
  EXPECT_EQ(Table::speedup(3.609), "3.61x");
  EXPECT_EQ(Table::speedup(2.5), "2.50x");
  EXPECT_EQ(Table::seconds(2.5), "2.500 s");
  EXPECT_EQ(Table::seconds(0.0025), "2.500 ms");
  EXPECT_EQ(Table::seconds(2.5e-6), "2.5 us");
}

TEST(Table, TracksRows) {
  Table t({"a", "b"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2"});
  t.add_row({"3"});  // short rows padded
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink += i;
  benchmark_sink(sink);
  EXPECT_GT(t.seconds(), 0.0);
  const double first = t.millis();
  const double second = t.millis();  // non-destructive, monotone reads
  EXPECT_LE(first, second);
  t.restart();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(ScopedAccumulator, AddsOnDestruction) {
  double sink = 0.0;
  {
    ScopedAccumulator acc(sink);
    double x = 0;
    for (int i = 0; i < 100000; ++i) x += i;
    benchmark_sink(x);
  }
  EXPECT_GT(sink, 0.0);
}

TEST(Parallel, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ParallelCountMatchesSequential) {
  const auto count =
      parallel_count(10000, [](std::size_t i) { return i % 3 == 0; });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < 10000; ++i) expected += (i % 3 == 0);
  EXPECT_EQ(count, expected);
}

TEST(Parallel, ThreadCountGuardRestores) {
  const int before = hardware_threads();
  {
    ThreadCountGuard guard(2);
    EXPECT_EQ(hardware_threads(), 2);
  }
  EXPECT_EQ(hardware_threads(), before);
}

TEST(Parallel, SingleThreadedIsDeterministic) {
  ThreadCountGuard guard(1);
  std::vector<int> order;
  parallel_for(100, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

}  // namespace
}  // namespace rtd
