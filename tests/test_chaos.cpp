// Chaos soak for the failpoint framework (common/failpoint.hpp): a seeded
// randomized mutation stream with a fault injected at every registered site
// in turn, on every point backend.  After EVERY fault the session must be
// either STATE-IDENTICAL to the pre-call observable state (strong guarantee)
// or kDegraded and healed by the next writer call — and validate(kDeep),
// which includes full oracle parity, must come back clean.  A snapshot held
// across the faults must keep answering queries consistently (readers are
// never torn).  The whole suite SKIPS unless the build compiled the
// failpoint machinery in (cmake -DRTDBSCAN_FAILPOINTS=ON); run it under the
// asan and tsan presets for the sanitizer legs (CI job `chaos`).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "core/clusterer.hpp"
#include "data/generators.hpp"
#include "index/index_kind.hpp"

namespace rtd {
namespace {

using geom::Vec3;
using index::IndexKind;

/// Everything a caller can observe about a session's writer-side state:
/// captured before a faulted call, compared after a strong-guarantee throw.
struct ObservableState {
  std::size_t n = 0;
  std::size_t live = 0;
  float eps = 0.0f;
  std::uint32_t min_pts = 0;
  std::uint32_t cluster_count = 0;
  std::vector<std::int32_t> labels;
  std::vector<std::uint8_t> is_core;
  std::vector<std::uint32_t> neighbor_counts;
  std::vector<std::uint8_t> live_mask;
};

ObservableState capture(const Clusterer& s) {
  ObservableState o;
  o.n = s.size();
  o.live = s.live_count();
  const ClusterResult& r = s.result();
  o.eps = r.eps;
  o.min_pts = r.min_pts;
  o.cluster_count = r.cluster_count;
  o.labels = r.labels;
  o.is_core = r.is_core;
  o.neighbor_counts = r.neighbor_counts;
  o.live_mask.resize(o.n);
  for (std::uint32_t i = 0; i < o.n; ++i) o.live_mask[i] = s.is_live(i);
  return o;
}

void expect_state_identical(const Clusterer& s, const ObservableState& o,
                            const std::string& what) {
  ASSERT_EQ(s.size(), o.n) << what;
  EXPECT_EQ(s.live_count(), o.live) << what;
  const ClusterResult& r = s.result();
  EXPECT_EQ(r.eps, o.eps) << what;
  EXPECT_EQ(r.min_pts, o.min_pts) << what;
  EXPECT_EQ(r.cluster_count, o.cluster_count) << what;
  EXPECT_EQ(r.labels, o.labels) << what;
  EXPECT_EQ(r.is_core, o.is_core) << what;
  EXPECT_EQ(r.neighbor_counts, o.neighbor_counts) << what;
  for (std::uint32_t i = 0; i < o.n; ++i) {
    ASSERT_EQ(s.is_live(i), o.live_mask[i] != 0) << what << " slot " << i;
  }
}

void expect_valid(const Clusterer& s, ValidationLevel level,
                  const std::string& what) {
  const ValidationReport rep = s.validate(level);
  EXPECT_TRUE(rep.ok) << what << ": "
                      << (rep.issues.empty() ? "(no issues)"
                                             : rep.issues.front());
}

std::vector<Vec3> cluster_batch(Rng& rng, std::size_t k) {
  std::vector<Vec3> batch;
  const float cx = rng.uniformf(0.0f, 10.0f);
  const float cy = rng.uniformf(0.0f, 10.0f);
  for (std::size_t p = 0; p < k; ++p) {
    batch.push_back({cx + rng.uniformf(-0.4f, 0.4f),
                     cy + rng.uniformf(-0.4f, 0.4f), 0.0f});
  }
  return batch;
}

std::vector<std::uint32_t> random_live_ids(Rng& rng, const Clusterer& s,
                                           std::size_t want) {
  std::vector<std::uint32_t> ids;
  want = std::min(want, s.live_count() > 1 ? s.live_count() - 1 : 0);
  while (ids.size() < want) {
    const auto id = static_cast<std::uint32_t>(rng.below(s.size()));
    if (s.is_live(id) &&
        std::find(ids.begin(), ids.end(), id) == ids.end()) {
      ids.push_back(id);
    }
  }
  return ids;
}

/// One randomized clean mutation (never faulted) to keep the stream moving.
// CHAOS_DEBUG=1 narrates every step and deep-validates after the clean
// mutations too, pinning a reported corruption to the op that introduced it
// (deep validation is O(live²), so it stays opt-in).
bool chaos_debug() { return ::getenv("CHAOS_DEBUG") != nullptr; }

void clean_step(Clusterer& s, Rng& rng, float eps, std::uint32_t min_pts) {
  const std::uint64_t dice = rng.below(4);
  if (chaos_debug()) {
    std::fprintf(stderr, "clean dice=%llu live=%zu\n",
                 static_cast<unsigned long long>(dice), s.live_count());
  }
  if (dice == 0) {
    (void)s.insert(cluster_batch(rng, 1 + rng.below(12)));
  } else if (dice == 1 && s.live_count() > 8) {
    s.remove(random_live_ids(rng, s, 1 + rng.below(6)));
  } else if (dice == 2) {
    (void)s.advance(cluster_batch(rng, 1 + rng.below(8)),
                    rng.below(std::min<std::uint64_t>(6, s.live_count())));
  } else {
    (void)s.run(eps, min_pts);
  }
}

/// The operation that reaches `site`, with the fault armed by the caller.
/// Returns true if the op threw.
bool faulted_op(Clusterer& s, Rng& rng, const std::string& site, float& eps,
                std::uint32_t min_pts) {
  try {
    if (site == "dsu.grow" || site == "engine.phase1" ||
        site == "engine.phase2") {
      // A fresh ε forces a full recount + merge; dsu.grow needs n to have
      // grown since the last finish_run, which the clean steps provide.
      eps = rng.uniformf(0.25f, 0.45f);
      (void)s.run(eps, min_pts);
    } else if (site == "engine.phase1_insert" || site == "index.insert" ||
               site == "repair.union" || site == "repair.relabel") {
      (void)s.insert(cluster_batch(rng, 2 + rng.below(10)));
    } else if (site == "engine.phase1_remove" || site == "index.remove" ||
               site == "repair.split" || site == "repair.border") {
      s.remove(random_live_ids(rng, s, 2 + rng.below(6)));
    } else if (site == "index.build" || site == "index.compacted_rebuild") {
      // A batch past the rebuild threshold forces a fresh build; with
      // tombstones around (the clean removals guarantee some) the build
      // goes through the CompactedIndex path.
      (void)s.insert(cluster_batch(rng, 70));
    } else if (site == "index.refit") {
      eps = rng.uniformf(0.25f, 0.45f);
      (void)s.run(eps, min_pts);
    } else if (site == "session.publish") {
      (void)s.snapshot();
    } else if (site == "sweep.scratch") {
      const std::vector<float> ladder{eps * 0.8f, eps, eps * 1.2f};
      (void)s.sweep(ladder, min_pts);
    } else {
      ADD_FAILURE() << "chaos soak has no op for site " << site;
    }
  } catch (...) {
    return true;
  }
  return false;
}

void chaos_soak(IndexKind kind) {
  if (!fail::compiled_in()) {
    GTEST_SKIP() << "build compiled without RTDBSCAN_FAILPOINTS=ON";
  }
  fail::disarm_all();
  Rng rng(0xC4A05 + static_cast<std::uint64_t>(kind));
  const auto base = data::taxi_gps(400, 31);
  Clusterer session(base.points, Options().with_backend(kind));
  float eps = 0.3f;
  const std::uint32_t min_pts = 5;
  (void)session.run(eps, min_pts);

  // A long-held reader: taken once, queried after every fault.  It must
  // keep answering against ITS frozen dataset no matter what faults tear
  // through the writer.
  const auto held = session.snapshot();
  const std::size_t held_n = held->size();

  const std::vector<std::string>& sites = fail::all_sites();
  std::size_t steps = 0;
  const int kCycles = 7;  // 7 × 16 sites × (clean + faulted) ≥ 200 steps
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    for (std::size_t si = 0; si < sites.size(); ++si) {
      const std::string& site = sites[si];
      const std::string what =
          std::string(index::to_string(kind)) + "/" + site + "/cycle " +
          std::to_string(cycle);

      // Keep the stream randomized between faults.
      if (chaos_debug()) std::fprintf(stderr, "-- %s\n", what.c_str());
      clean_step(session, rng, eps, min_pts);
      ++steps;
      expect_valid(session,
                   chaos_debug() ? ValidationLevel::kDeep
                                 : ValidationLevel::kQuick,
                   what + " (clean)");
      if (::testing::Test::HasFailure()) return;

      // Cycle through the fault actions; decline only where an operation
      // can report failure (the declinable try_* sites).
      fail::Config cfg;
      const bool declinable = site == "index.insert" ||
                              site == "index.remove" ||
                              site == "index.refit";
      const int flavor = (cycle + static_cast<int>(si)) % 3;
      if (flavor == 0) {
        cfg.action = fail::Action::kThrowBadAlloc;
      } else if (flavor == 1 || !declinable) {
        cfg.action = fail::Action::kThrowError;
      } else {
        cfg.action = fail::Action::kDecline;
      }

      const ObservableState before = capture(session);
      fail::arm(site, cfg);
      const bool threw = faulted_op(session, rng, site, eps, min_pts);
      fail::disarm_all();
      ++steps;

      if (threw) {
        if (session.health() == SessionHealth::kHealthy) {
          // Strong guarantee: nothing observable moved.
          expect_state_identical(session, before, what + " (strong)");
        } else {
          // Degraded: the bookkeeping must still be sound, and the next
          // writer call must heal back to a coherent clustering.
          expect_valid(session, ValidationLevel::kQuick,
                       what + " (degraded)");
          EXPECT_THROW((void)session.result(), std::logic_error) << what;
          (void)session.run(eps, min_pts);  // heal
          ++steps;
          EXPECT_EQ(session.health(), SessionHealth::kHealthy) << what;
        }
      }
      expect_valid(session, ValidationLevel::kDeep, what + " (post-fault)");

      // The held reader is never torn: same frozen dataset, ids in range.
      const auto ids =
          held->query_neighbors(held->points()[steps % held_n]);
      for (const std::uint32_t id : ids) {
        ASSERT_LT(id, held_n) << what << " (held snapshot)";
      }
      if (::testing::Test::HasFailure()) return;
    }
  }
  EXPECT_GE(steps, 200u) << "soak shorter than the contract";

  // Cumulative coverage: every registered site actually fired at least one
  // fault somewhere in the soak.
  for (const std::string& site : sites) {
    EXPECT_GT(fail::fire_count(site), 0u)
        << index::to_string(kind) << ": site " << site << " never fired";
  }
}

TEST(ChaosSoak, BruteForce) { chaos_soak(IndexKind::kBruteForce); }
TEST(ChaosSoak, Grid) { chaos_soak(IndexKind::kGrid); }
TEST(ChaosSoak, DenseBox) { chaos_soak(IndexKind::kDenseBox); }
TEST(ChaosSoak, PointBvh) { chaos_soak(IndexKind::kPointBvh); }
TEST(ChaosSoak, BvhRt) { chaos_soak(IndexKind::kBvhRt); }

// ---------------------------------------------------------------------------
// Concurrent readers while the writer faults (the tsan leg): reader threads
// snapshot and query continuously; the writer takes faults at the publish
// and mutation sites.  Readers may observe a thrown session.publish fault
// (snapshot() propagates it, nothing is published) — they retry; they must
// never crash, tear, or deadlock.
// ---------------------------------------------------------------------------

TEST(ChaosConcurrent, ReadersSurviveWriterFaults) {
  if (!fail::compiled_in()) {
    GTEST_SKIP() << "build compiled without RTDBSCAN_FAILPOINTS=ON";
  }
  fail::disarm_all();
  const auto base = data::taxi_gps(300, 32);
  Clusterer session(base.points,
                    Options().with_backend(IndexKind::kPointBvh));
  (void)session.run(0.3f, 5);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(0x5EED + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          const auto snap = session.snapshot();
          const auto ids = snap->query_neighbors(
              snap->points()[rng.below(snap->size())]);
          for (const std::uint32_t id : ids) {
            if (id >= snap->size()) std::abort();  // torn snapshot
          }
          reads.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          // An injected session.publish fault surfaced through this
          // reader's own snapshot() call — legal; retry.
        }
      }
    });
  }

  Rng rng(0xFA11);
  float eps = 0.3f;
  const std::vector<std::string> writer_sites{
      "session.publish", "engine.phase1_insert", "engine.phase1_remove",
      "repair.relabel", "index.insert"};
  for (int step = 0; step < 60; ++step) {
    fail::Config cfg;
    cfg.action = step % 2 == 0 ? fail::Action::kThrowError
                               : fail::Action::kThrowBadAlloc;
    fail::arm(writer_sites[static_cast<std::size_t>(step) %
                           writer_sites.size()],
              cfg);
    try {
      if (step % 3 == 0) {
        (void)session.insert(cluster_batch(rng, 4));
      } else if (step % 3 == 1 && session.live_count() > 8) {
        session.remove(random_live_ids(rng, session, 3));
      } else {
        (void)session.run(eps, 5);
      }
    } catch (...) {
      fail::disarm_all();
      if (session.health() == SessionHealth::kDegraded) {
        (void)session.run(eps, 5);  // heal before the next faulted step
      }
    }
    fail::disarm_all();
    const ValidationReport rep = session.validate(ValidationLevel::kQuick);
    EXPECT_TRUE(rep.ok) << (rep.issues.empty() ? "" : rep.issues.front());
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_GT(reads.load(), 0u);
  expect_valid(session, ValidationLevel::kDeep, "concurrent epilogue");
}

}  // namespace
}  // namespace rtd
