#include "rt/bvh.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "data/generators.hpp"

namespace rtd::rt {
namespace {

using geom::Aabb;
using geom::Vec3;

std::vector<Aabb> random_sphere_bounds(std::size_t n, float radius,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Aabb> bounds;
  bounds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    bounds.push_back(Aabb::of_sphere(
        Vec3{rng.uniformf(0, 100), rng.uniformf(0, 100),
             rng.uniformf(0, 100)},
        radius));
  }
  return bounds;
}

class BvhBuilderTest : public ::testing::TestWithParam<BuildAlgorithm> {};

TEST_P(BvhBuilderTest, EmptyInputGivesEmptyBvh) {
  BuildOptions opts;
  opts.algorithm = GetParam();
  const Bvh bvh = build_bvh({}, opts);
  EXPECT_TRUE(bvh.empty());
  EXPECT_EQ(bvh.prim_count(), 0u);
  EXPECT_TRUE(bvh.validate({}).empty());
}

TEST_P(BvhBuilderTest, SinglePrimitiveIsLeafRoot) {
  BuildOptions opts;
  opts.algorithm = GetParam();
  const std::vector<Aabb> bounds{Aabb::of_sphere(Vec3{1, 2, 3}, 0.5f)};
  const Bvh bvh = build_bvh(bounds, opts);
  ASSERT_EQ(bvh.nodes.size(), 1u);
  EXPECT_TRUE(bvh.nodes[0].is_leaf());
  EXPECT_EQ(bvh.nodes[0].count, 1u);
  EXPECT_TRUE(bvh.validate(bounds).empty()) << bvh.validate(bounds);
}

TEST_P(BvhBuilderTest, ValidStructureOnRandomInput) {
  BuildOptions opts;
  opts.algorithm = GetParam();
  for (const std::size_t n : {2u, 3u, 17u, 100u, 1000u, 20000u}) {
    const auto bounds = random_sphere_bounds(n, 1.0f, n);
    const Bvh bvh = build_bvh(bounds, opts);
    EXPECT_EQ(bvh.prim_count(), n);
    const std::string err = bvh.validate(bounds);
    EXPECT_TRUE(err.empty()) << "n=" << n << ": " << err;
  }
}

TEST_P(BvhBuilderTest, ValidOnAllIdenticalPrimitives) {
  // Degenerate: all Morton codes equal; builders must fall back to median
  // splits and still terminate with a valid tree.
  BuildOptions opts;
  opts.algorithm = GetParam();
  const std::vector<Aabb> bounds(5000, Aabb::of_sphere(Vec3{5, 5, 5}, 1.0f));
  const Bvh bvh = build_bvh(bounds, opts);
  const std::string err = bvh.validate(bounds);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_LE(bvh.stats.max_depth, 40u);  // balanced despite degeneracy
}

TEST_P(BvhBuilderTest, ValidOnCollinearPoints) {
  BuildOptions opts;
  opts.algorithm = GetParam();
  std::vector<Aabb> bounds;
  for (int i = 0; i < 3000; ++i) {
    bounds.push_back(
        Aabb::of_sphere(Vec3{static_cast<float>(i) * 0.01f, 0, 0}, 0.05f));
  }
  const Bvh bvh = build_bvh(bounds, opts);
  const std::string err = bvh.validate(bounds);
  EXPECT_TRUE(err.empty()) << err;
}

TEST_P(BvhBuilderTest, RootBoundsEncloseScene) {
  BuildOptions opts;
  opts.algorithm = GetParam();
  const auto bounds = random_sphere_bounds(2000, 0.5f, 99);
  const Bvh bvh = build_bvh(bounds, opts);
  for (const auto& b : bounds) {
    EXPECT_TRUE(bvh.nodes[0].bounds.contains(b));
  }
}

TEST_P(BvhBuilderTest, LeafSizeRespected) {
  BuildOptions opts;
  opts.algorithm = GetParam();
  opts.leaf_size = 8;
  const auto bounds = random_sphere_bounds(5000, 0.5f, 7);
  const Bvh bvh = build_bvh(bounds, opts);
  for (const auto& node : bvh.nodes) {
    if (node.is_leaf()) {
      EXPECT_LE(node.count, opts.leaf_size);
      EXPECT_GE(node.count, 1u);
    }
  }
}

TEST_P(BvhBuilderTest, StatsAreConsistent) {
  BuildOptions opts;
  opts.algorithm = GetParam();
  const auto bounds = random_sphere_bounds(10000, 0.5f, 21);
  const Bvh bvh = build_bvh(bounds, opts);
  EXPECT_EQ(bvh.stats.node_count, bvh.nodes.size());
  std::uint32_t leaves = 0;
  for (const auto& n : bvh.nodes) leaves += n.is_leaf();
  EXPECT_EQ(bvh.stats.leaf_count, leaves);
  // Binary tree with adjacent child pairs: nodes = 2 * leaves - 1.
  EXPECT_EQ(bvh.stats.node_count, 2 * leaves - 1);
  EXPECT_GT(bvh.stats.max_depth, 0u);
  EXPECT_GT(bvh.stats.sah_cost, 0.0f);
  EXPECT_GE(bvh.stats.build_seconds, 0.0);
}

TEST_P(BvhBuilderTest, ParallelAndSerialProduceValidTrees) {
  BuildOptions opts;
  opts.algorithm = GetParam();
  const auto bounds = random_sphere_bounds(8000, 0.5f, 33);
  opts.parallel = true;
  const Bvh par = build_bvh(bounds, opts);
  opts.parallel = false;
  const Bvh ser = build_bvh(bounds, opts);
  EXPECT_TRUE(par.validate(bounds).empty());
  EXPECT_TRUE(ser.validate(bounds).empty());
  // Same builder on same input: identical topology regardless of the sort
  // implementation (both sorts are stable).
  EXPECT_EQ(par.nodes.size(), ser.nodes.size());
  EXPECT_EQ(par.prim_index, ser.prim_index);
}

INSTANTIATE_TEST_SUITE_P(Builders, BvhBuilderTest,
                         ::testing::Values(BuildAlgorithm::kLbvh,
                                           BuildAlgorithm::kBinnedSah),
                         [](const auto& param_info) {
                           return param_info.param == BuildAlgorithm::kLbvh
                                      ? "Lbvh"
                                      : "BinnedSah";
                         });

TEST(BvhQuality, SahBuilderHasLowerOrSimilarSahCost) {
  // The quality builder should not be much worse than the fast builder on a
  // clustered dataset (it is usually better).
  const auto dataset = data::taxi_gps(20000, 5);
  std::vector<Aabb> bounds;
  bounds.reserve(dataset.points.size());
  for (const auto& p : dataset.points) {
    bounds.push_back(Aabb::of_sphere(p, 0.3f));
  }
  BuildOptions opts;
  opts.algorithm = BuildAlgorithm::kLbvh;
  const Bvh lbvh = build_bvh(bounds, opts);
  opts.algorithm = BuildAlgorithm::kBinnedSah;
  const Bvh sah = build_bvh(bounds, opts);
  EXPECT_LT(sah.stats.sah_cost, lbvh.stats.sah_cost * 1.25f);
}

TEST(BvhToString, BuildAlgorithmNames) {
  EXPECT_STREQ(to_string(BuildAlgorithm::kLbvh), "lbvh");
  EXPECT_STREQ(to_string(BuildAlgorithm::kBinnedSah), "binned-sah");
}

}  // namespace
}  // namespace rtd::rt
