#include "rt/traversal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "rt/bvh.hpp"

namespace rtd::rt {
namespace {

using geom::Aabb;
using geom::Ray;
using geom::Vec3;

struct Scene {
  std::vector<Vec3> centers;
  std::vector<Aabb> bounds;
  Bvh bvh;
};

Scene make_scene(std::size_t n, float radius, std::uint64_t seed,
                 BuildAlgorithm algo) {
  Rng rng(seed);
  Scene s;
  for (std::size_t i = 0; i < n; ++i) {
    s.centers.push_back(Vec3{rng.uniformf(0, 20), rng.uniformf(0, 20),
                             rng.uniformf(0, 20)});
    s.bounds.push_back(Aabb::of_sphere(s.centers.back(), radius));
  }
  BuildOptions opts;
  opts.algorithm = algo;
  s.bvh = build_bvh(s.bounds, opts);
  return s;
}

std::set<std::uint32_t> candidates_via_bvh(const Scene& s, const Ray& ray,
                                           TraversalStats* stats = nullptr) {
  std::set<std::uint32_t> out;
  TraversalStats local;
  traverse(
      s.bvh, ray,
      [&](std::uint32_t prim) {
        out.insert(prim);
        return TraversalControl::kContinue;
      },
      stats != nullptr ? *stats : local);
  return out;
}

std::set<std::uint32_t> candidates_brute(const Scene& s, const Ray& ray) {
  std::set<std::uint32_t> out;
  traverse_brute_force(s.bounds, ray, [&](std::uint32_t prim) {
    out.insert(prim);
    return TraversalControl::kContinue;
  });
  return out;
}

/// A leaf holds up to leaf_size primitives; reaching the leaf delivers all
/// of them as candidates, so the candidate set is a SUPERSET of the exact
/// per-primitive AABB hits (the Intersection program re-checks exactness —
/// Alg. 2 line 6).  Filtering candidates by the primitive AABB must recover
/// the brute-force hit set exactly, proving no hit is ever missed.
void expect_complete_candidates(const Scene& s, const Ray& ray,
                                int trial) {
  const auto via_bvh = candidates_via_bvh(s, ray);
  const auto brute = candidates_brute(s, ray);
  for (const auto prim : brute) {
    EXPECT_TRUE(via_bvh.count(prim))
        << "trial " << trial << ": BVH missed primitive " << prim;
  }
  std::set<std::uint32_t> filtered;
  for (const auto prim : via_bvh) {
    if (geom::ray_intersects_aabb(ray, s.bounds[prim])) {
      filtered.insert(prim);
    }
  }
  EXPECT_EQ(filtered, brute) << "trial " << trial;
}

class TraversalTest : public ::testing::TestWithParam<BuildAlgorithm> {};

TEST_P(TraversalTest, PointQueryCandidatesCoverBruteForce) {
  const Scene s = make_scene(3000, 0.7f, 17, GetParam());
  Rng rng(18);
  for (int trial = 0; trial < 300; ++trial) {
    const Ray ray = Ray::point_query(Vec3{
        rng.uniformf(-1, 21), rng.uniformf(-1, 21), rng.uniformf(-1, 21)});
    expect_complete_candidates(s, ray, trial);
  }
}

TEST_P(TraversalTest, PointQueryExactSphereHitsMatchBruteForce) {
  // End-to-end check of the paper's query: candidates + exact sphere filter
  // must equal the brute-force exact neighbor set.
  const float radius = 0.7f;
  const Scene s = make_scene(3000, radius, 18, GetParam());
  Rng rng(19);
  TraversalStats stats;
  for (int trial = 0; trial < 300; ++trial) {
    const Vec3 q{rng.uniformf(-1, 21), rng.uniformf(-1, 21),
                 rng.uniformf(-1, 21)};
    std::set<std::uint32_t> via_bvh;
    traverse(
        s.bvh, Ray::point_query(q),
        [&](std::uint32_t prim) {
          if (geom::distance_squared(q, s.centers[prim]) <=
              radius * radius) {
            via_bvh.insert(prim);
          }
          return TraversalControl::kContinue;
        },
        stats);
    std::set<std::uint32_t> brute;
    for (std::uint32_t i = 0; i < s.centers.size(); ++i) {
      if (geom::distance_squared(q, s.centers[i]) <= radius * radius) {
        brute.insert(i);
      }
    }
    EXPECT_EQ(via_bvh, brute) << "trial " << trial;
  }
}

TEST_P(TraversalTest, FiniteRayCandidatesCoverBruteForce) {
  const Scene s = make_scene(2000, 0.5f, 19, GetParam());
  Rng rng(20);
  for (int trial = 0; trial < 300; ++trial) {
    const Vec3 origin{rng.uniformf(-5, 25), rng.uniformf(-5, 25),
                      rng.uniformf(-5, 25)};
    const Vec3 dir = normalized(Vec3{rng.uniformf(-1, 1),
                                     rng.uniformf(-1, 1),
                                     rng.uniformf(-1, 1)});
    const Ray ray{origin, dir, 0.0f, rng.uniformf(1.0f, 50.0f)};
    expect_complete_candidates(s, ray, trial);
  }
}

TEST_P(TraversalTest, QueriesFromDatasetPointsSeeTheirOwnSphere) {
  const Scene s = make_scene(1000, 0.4f, 21, GetParam());
  TraversalStats stats;
  for (std::uint32_t i = 0; i < s.centers.size(); ++i) {
    bool saw_self = false;
    traverse(
        s.bvh, Ray::point_query(s.centers[i]),
        [&](std::uint32_t prim) {
          if (prim == i) saw_self = true;
          return TraversalControl::kContinue;
        },
        stats);
    EXPECT_TRUE(saw_self) << "point " << i;
  }
  EXPECT_EQ(stats.rays, s.centers.size());
}

TEST_P(TraversalTest, EarlyTerminationStopsTraversal) {
  const Scene s = make_scene(5000, 2.0f, 23, GetParam());
  const Ray ray = Ray::point_query(s.centers[0]);

  TraversalStats full_stats;
  std::size_t full_count = 0;
  traverse(
      s.bvh, ray,
      [&](std::uint32_t) {
        ++full_count;
        return TraversalControl::kContinue;
      },
      full_stats);
  ASSERT_GT(full_count, 3u);

  TraversalStats early_stats;
  std::size_t early_count = 0;
  traverse(
      s.bvh, ray,
      [&](std::uint32_t) {
        ++early_count;
        return early_count >= 3 ? TraversalControl::kTerminate
                                : TraversalControl::kContinue;
      },
      early_stats);
  EXPECT_EQ(early_count, 3u);
  EXPECT_LT(early_stats.nodes_visited, full_stats.nodes_visited);
}

TEST_P(TraversalTest, StatsCountWork) {
  const Scene s = make_scene(2000, 0.5f, 29, GetParam());
  TraversalStats stats;
  candidates_via_bvh(s, Ray::point_query(s.centers[0]), &stats);
  EXPECT_EQ(stats.rays, 1u);
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_GT(stats.aabb_tests, 0u);
  // Internal node visits perform two child tests each.
  EXPECT_GE(stats.aabb_tests, stats.nodes_visited);
}

TEST_P(TraversalTest, MissedSceneVisitsOnlyRoot) {
  const Scene s = make_scene(1000, 0.5f, 31, GetParam());
  TraversalStats stats;
  const auto hits =
      candidates_via_bvh(s, Ray::point_query(Vec3{500, 500, 500}), &stats);
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(stats.nodes_visited, 0u);  // root AABB test fails up front
  EXPECT_EQ(stats.aabb_tests, 1u);
}

TEST_P(TraversalTest, OverlapQueryCoversBruteForce) {
  const Scene s = make_scene(3000, 0.0001f, 37, GetParam());
  Rng rng(38);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec3 q{rng.uniformf(0, 20), rng.uniformf(0, 20),
                 rng.uniformf(0, 20)};
    const Aabb query = Aabb::of_sphere(q, rng.uniformf(0.1f, 3.0f));

    std::set<std::uint32_t> via_bvh;
    TraversalStats stats;
    traverse_overlap(
        s.bvh, query,
        [&](std::uint32_t prim) {
          via_bvh.insert(prim);
          return TraversalControl::kContinue;
        },
        stats);

    std::set<std::uint32_t> brute;
    for (std::uint32_t i = 0; i < s.bounds.size(); ++i) {
      if (query.overlaps(s.bounds[i])) brute.insert(i);
    }
    // Same leaf-granularity contract as ray traversal: candidates cover the
    // exact overlap set; filtering by primitive bounds recovers it.
    for (const auto prim : brute) {
      EXPECT_TRUE(via_bvh.count(prim))
          << "trial " << trial << ": missed primitive " << prim;
    }
    std::set<std::uint32_t> filtered;
    for (const auto prim : via_bvh) {
      if (query.overlaps(s.bounds[prim])) filtered.insert(prim);
    }
    EXPECT_EQ(filtered, brute) << "trial " << trial;
  }
}

TEST_P(TraversalTest, EmptyBvhIsANoOp) {
  Bvh bvh;
  TraversalStats stats;
  traverse(
      bvh, Ray::point_query(Vec3{0, 0, 0}),
      [&](std::uint32_t) {
        ADD_FAILURE() << "callback on empty BVH";
        return TraversalControl::kContinue;
      },
      stats);
  EXPECT_EQ(stats.rays, 0u);
}

TEST_P(TraversalTest, StackDepthSufficientForAdversarialInput) {
  // A long skewed diagonal of overlapping spheres stresses traversal depth;
  // with median-split fallbacks the tree depth stays within the fixed stack.
  std::vector<Aabb> bounds;
  std::vector<Vec3> centers;
  for (int i = 0; i < 30000; ++i) {
    const float t = static_cast<float>(i) * 1e-4f;
    centers.push_back(Vec3{t, t, t});
    bounds.push_back(Aabb::of_sphere(centers.back(), 0.5f));
  }
  BuildOptions opts;
  opts.algorithm = GetParam();
  const Bvh bvh = build_bvh(bounds, opts);
  ASSERT_LE(bvh.stats.max_depth + 1, 64u) << "would overflow traversal stack";

  TraversalStats stats;
  std::size_t hits = 0;
  traverse(
      bvh, Ray::point_query(centers[15000]),
      [&](std::uint32_t) {
        ++hits;
        return TraversalControl::kContinue;
      },
      stats);
  EXPECT_GT(hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Builders, TraversalTest,
                         ::testing::Values(BuildAlgorithm::kLbvh,
                                           BuildAlgorithm::kBinnedSah),
                         [](const auto& param_info) {
                           return param_info.param == BuildAlgorithm::kLbvh
                                      ? "Lbvh"
                                      : "BinnedSah";
                         });

}  // namespace
}  // namespace rtd::rt
