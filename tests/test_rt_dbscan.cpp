#include "core/rt_dbscan.hpp"

#include <gtest/gtest.h>

#include "core/api.hpp"
#include "data/generators.hpp"
#include "dbscan_test_util.hpp"

namespace rtd::core {
namespace {

using dbscan::kNoiseLabel;
using dbscan::Params;
using testutil::expect_matches_reference;

TEST(RtDbscan, RejectsBadParams) {
  const std::vector<geom::Vec3> pts{{0, 0, 0}};
  EXPECT_THROW(rt_dbscan(pts, {0.0f, 3}), std::invalid_argument);
  EXPECT_THROW(rt_dbscan(pts, {1.0f, 0}), std::invalid_argument);
}

TEST(RtDbscan, EmptyInput) {
  const std::vector<geom::Vec3> pts;
  const auto r = rt_dbscan(pts, {1.0f, 3});
  EXPECT_EQ(r.clustering.size(), 0u);
  EXPECT_EQ(r.clustering.cluster_count, 0u);
}

TEST(RtDbscan, MatchesReferenceOnHandCheckedData) {
  const auto pts = testutil::two_squares_and_outlier();
  const Params params{1.5f, 3};
  const auto r = rt_dbscan(pts, params);
  expect_matches_reference(pts, params, r.clustering, "rt-dbscan");
  EXPECT_EQ(r.clustering.cluster_count, 2u);
  EXPECT_EQ(r.clustering.labels[8], kNoiseLabel);
}

TEST(RtDbscan, MatchesReferenceOnAmbiguousBorder) {
  const auto pts = testutil::ambiguous_border();
  const Params params{2.05f, 6};
  const auto r = rt_dbscan(pts, params);
  expect_matches_reference(pts, params, r.clustering, "rt-dbscan");
}

class RtDbscanDatasetTest
    : public ::testing::TestWithParam<std::tuple<data::PaperDataset, float,
                                                 std::uint32_t>> {};

TEST_P(RtDbscanDatasetTest, MatchesReference) {
  const auto [which, eps, min_pts] = GetParam();
  const auto dataset = data::make_paper_dataset(which, 4000, 80);
  const Params params{eps, min_pts};
  const auto r = rt_dbscan(dataset.points, params);
  expect_matches_reference(dataset.points, params, r.clustering,
                           "rt-dbscan");
}

INSTANTIATE_TEST_SUITE_P(
    PaperDatasets, RtDbscanDatasetTest,
    ::testing::Values(
        std::make_tuple(data::PaperDataset::k3DRoad, 0.5f, 10u),
        std::make_tuple(data::PaperDataset::k3DRoad, 1.0f, 30u),
        std::make_tuple(data::PaperDataset::kPorto, 0.3f, 10u),
        std::make_tuple(data::PaperDataset::kPorto, 0.8f, 50u),
        std::make_tuple(data::PaperDataset::kNgsim, 0.05f, 10u),
        std::make_tuple(data::PaperDataset::kNgsim, 0.5f, 100u),
        std::make_tuple(data::PaperDataset::k3DIono, 2.0f, 10u),
        std::make_tuple(data::PaperDataset::k3DIono, 4.0f, 40u)));

TEST(RtDbscan, TriangleModeMatchesSphereMode) {
  const auto dataset = data::taxi_gps(1500, 81);
  const Params params{0.3f, 10};
  const auto spheres = rt_dbscan(dataset.points, params);

  RtDbscanOptions tri_opts;
  tri_opts.geometry = GeometryMode::kTriangles;
  tri_opts.triangle_subdivisions = 1;
  const auto triangles = rt_dbscan(dataset.points, params, tri_opts);

  const auto eq = dbscan::check_equivalent(
      dataset.points, params, spheres.clustering, triangles.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.reason;
}

TEST(RtDbscan, TriangleModeMatchesReferenceAtZeroSubdivisions) {
  // Even the coarse 20-face icosahedron is exact thanks to circumscription
  // + the exact AnyHit distance filter.
  const auto dataset = data::road_network(1000, 82);
  const Params params{0.5f, 5};
  RtDbscanOptions opts;
  opts.geometry = GeometryMode::kTriangles;
  opts.triangle_subdivisions = 0;
  const auto r = rt_dbscan(dataset.points, params, opts);
  expect_matches_reference(dataset.points, params, r.clustering,
                           "rt-dbscan-triangles");
}

TEST(RtDbscan, TriangleModeDoesMoreWork) {
  // §VI-C: the AnyHit path costs more.  The work counters must show many
  // more primitive tests and non-zero AnyHit calls.
  const auto dataset = data::taxi_gps(1500, 83);
  const Params params{0.3f, 10};
  const auto spheres = rt_dbscan(dataset.points, params);
  RtDbscanOptions opts;
  opts.geometry = GeometryMode::kTriangles;
  const auto triangles = rt_dbscan(dataset.points, params, opts);

  EXPECT_EQ(spheres.phase1.work.anyhit_calls, 0u);
  EXPECT_GT(triangles.phase1.work.anyhit_calls, 0u);
  EXPECT_GT(triangles.phase1.work.isect_calls,
            spheres.phase1.work.isect_calls);
}

TEST(RtDbscan, ReorderedQueriesGiveEquivalentResults) {
  // The RTNN-style Morton launch order changes scheduling only.
  const auto dataset = data::taxi_gps(3000, 78);
  const Params params{0.3f, 10};
  RtDbscanOptions reordered;
  reordered.reorder_queries = true;
  const auto a = rt_dbscan(dataset.points, params);
  const auto b = rt_dbscan(dataset.points, params, reordered);
  const auto eq = dbscan::check_equivalent(dataset.points, params,
                                           a.clustering, b.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.reason;
  // Work counters are identical: the same rays trace, in another order.
  EXPECT_EQ(a.phase1.work.nodes_visited, b.phase1.work.nodes_visited);
  EXPECT_EQ(a.phase1.work.isect_calls, b.phase1.work.isect_calls);
  EXPECT_EQ(a.neighbor_counts, b.neighbor_counts);
}

TEST(RtDbscanRunner, ReorderedRunnerMatches) {
  const auto dataset = data::taxi_gps(2000, 79);
  RtDbscanOptions reordered;
  reordered.reorder_queries = true;
  RtDbscanRunner runner(dataset.points, 0.3f, reordered);
  const auto cached = runner.run(10);
  const auto oneshot = rt_dbscan(dataset.points, {0.3f, 10});
  const auto eq = dbscan::check_equivalent(
      dataset.points, {0.3f, 10}, oneshot.clustering, cached.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.reason;
}

TEST(RtDbscan, BothBuildersEquivalent) {
  const auto dataset = data::ionosphere3d(3000, 84);
  const Params params{2.0f, 10};
  RtDbscanOptions sah;
  sah.device.build.algorithm = rt::BuildAlgorithm::kBinnedSah;
  const auto a = rt_dbscan(dataset.points, params);
  const auto b = rt_dbscan(dataset.points, params, sah);
  const auto eq = dbscan::check_equivalent(dataset.points, params,
                                           a.clustering, b.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.reason;
}

TEST(RtDbscan, SingleThreadMatchesParallel) {
  const auto dataset = data::two_rings(2000, 85);
  const Params params{0.8f, 5};
  RtDbscanOptions serial;
  serial.device.threads = 1;
  const auto a = rt_dbscan(dataset.points, params, serial);
  const auto b = rt_dbscan(dataset.points, params);
  const auto eq = dbscan::check_equivalent(dataset.points, params,
                                           a.clustering, b.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.reason;
}

TEST(RtDbscan, NeighborCountsAreExact) {
  const auto dataset = data::taxi_gps(2000, 86);
  const Params params{0.3f, 10};
  const auto r = rt_dbscan(dataset.points, params);
  ASSERT_EQ(r.neighbor_counts.size(), dataset.size());
  const float e2 = params.eps_squared();
  for (std::uint32_t i = 0; i < dataset.size(); i += 37) {
    std::uint32_t expected = 0;
    for (std::uint32_t j = 0; j < dataset.size(); ++j) {
      if (j != i && geom::distance_squared(dataset.points[i],
                                           dataset.points[j]) <= e2) {
        ++expected;
      }
    }
    EXPECT_EQ(r.neighbor_counts[i], expected) << "point " << i;
  }
}

TEST(RtDbscan, PhaseStatsPopulated) {
  const auto dataset = data::taxi_gps(3000, 87);
  const auto r = rt_dbscan(dataset.points, {0.3f, 10});
  EXPECT_EQ(r.phase1.work.rays, dataset.size());
  EXPECT_EQ(r.phase2.work.rays, r.clustering.core_count());
  EXPECT_GT(r.accel_build.node_count, 0u);
  EXPECT_GT(r.clustering.timings.index_build_seconds, 0.0);
  EXPECT_GT(r.clustering.timings.core_phase_seconds, 0.0);
}

TEST(RtDbscan, MemoryFootprintHasNoNeighborLists) {
  // O(n) memory contract: the result's only per-point payloads are labels,
  // core flags and counts.  (Compile-time shape check, documented here.)
  const auto dataset = data::taxi_gps(1000, 88);
  const auto r = rt_dbscan(dataset.points, {0.3f, 10});
  EXPECT_EQ(r.clustering.labels.size(), dataset.size());
  EXPECT_EQ(r.clustering.is_core.size(), dataset.size());
  EXPECT_EQ(r.neighbor_counts.size(), dataset.size());
}

TEST(RtDbscanRunner, FirstRunMatchesOneShot) {
  const auto dataset = data::taxi_gps(3000, 89);
  const Params params{0.3f, 10};
  RtDbscanRunner runner(dataset.points, params.eps);
  EXPECT_FALSE(runner.counts_cached());
  const auto cached = runner.run(params.min_pts);
  EXPECT_TRUE(runner.counts_cached());
  const auto oneshot = rt_dbscan(dataset.points, params);
  const auto eq = dbscan::check_equivalent(
      dataset.points, params, oneshot.clustering, cached.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.reason;
}

TEST(RtDbscanRunner, RerunsWithDifferentMinPtsMatchOneShots) {
  const auto dataset = data::taxi_gps(3000, 90);
  const float eps = 0.3f;
  RtDbscanRunner runner(dataset.points, eps);
  for (const std::uint32_t min_pts : {5u, 10u, 40u, 2u}) {
    const auto cached = runner.run(min_pts);
    const auto oneshot = rt_dbscan(dataset.points, {eps, min_pts});
    const auto eq =
        dbscan::check_equivalent(dataset.points, {eps, min_pts},
                                 oneshot.clustering, cached.clustering);
    EXPECT_TRUE(eq.equivalent) << "minPts=" << min_pts << ": " << eq.reason;
  }
}

TEST(RtDbscanRunner, CachedRunsSkipPhase1) {
  const auto dataset = data::taxi_gps(3000, 91);
  RtDbscanRunner runner(dataset.points, 0.3f);
  const auto first = runner.run(10);
  EXPECT_GT(first.phase1.work.rays, 0u);
  const auto second = runner.run(20);
  EXPECT_EQ(second.phase1.work.rays, 0u);  // no rays launched for phase 1
  EXPECT_EQ(second.phase1.seconds, 0.0);
}

TEST(RtDbscanRunner, TriangleModeFirstRunMatchesOneShot) {
  // §VI-C sessions are supported since the TriangleAccel refit path landed:
  // the runner tessellates once and replays phases over the cached counts.
  const auto dataset = data::taxi_gps(800, 93);
  const Params params{0.3f, 8};
  RtDbscanOptions opts;
  opts.geometry = GeometryMode::kTriangles;
  opts.triangle_subdivisions = 1;
  RtDbscanRunner runner(dataset.points, params.eps, opts);
  EXPECT_FALSE(runner.counts_cached());
  const auto cached = runner.run(params.min_pts);
  EXPECT_TRUE(runner.counts_cached());
  EXPECT_GT(cached.phase1.work.anyhit_calls, 0u);
  const auto oneshot = rt_dbscan(dataset.points, params, opts);
  EXPECT_EQ(cached.clustering.labels, oneshot.clustering.labels);
  EXPECT_EQ(cached.neighbor_counts, oneshot.neighbor_counts);
  // minPts re-run skips phase 1 entirely.
  const auto second = runner.run(2 * params.min_pts);
  EXPECT_EQ(second.phase1.work.rays, 0u);
  expect_matches_reference(dataset.points, {params.eps, 2 * params.min_pts},
                           second.clustering, "triangle-runner-rerun");
}

TEST(RtDbscanRunner, TriangleModeEpsSweepRefitsInPlace) {
  // set_eps on a triangle session rescales the tessellation and REFITS —
  // results must match a from-scratch run at every eps, across widths.
  const auto dataset = data::taxi_gps(600, 94);
  for (const rt::TraversalWidth width :
       {rt::TraversalWidth::kBinary, rt::TraversalWidth::kWide,
        rt::TraversalWidth::kWideQuantized}) {
    RtDbscanOptions opts;
    opts.geometry = GeometryMode::kTriangles;
    opts.triangle_subdivisions = 0;
    opts.device.build.width = width;
    RtDbscanRunner runner(dataset.points, 0.2f, opts);
    (void)runner.run(5);
    for (const float eps : {0.45f, 0.15f, 0.3f}) {
      runner.set_eps(eps);
      EXPECT_FALSE(runner.counts_cached());
      const Params params{eps, 5};
      const auto swept = runner.run(params.min_pts);
      expect_matches_reference(dataset.points, params, swept.clustering,
                               "triangle-runner-eps-sweep");
      const auto oneshot = rt_dbscan(dataset.points, params, opts);
      EXPECT_EQ(swept.clustering.labels, oneshot.clustering.labels)
          << rt::to_string(width) << " eps=" << eps;
      EXPECT_EQ(swept.neighbor_counts, oneshot.neighbor_counts)
          << rt::to_string(width) << " eps=" << eps;
    }
  }
}

TEST(RtDbscanRunner, TriangleModeEmptyInputSweeps) {
  // Regression: an empty triangle session must allow set_eps (rescaling
  // nothing is a valid ε sweep), exactly like the sphere session does.
  RtDbscanOptions opts;
  opts.geometry = GeometryMode::kTriangles;
  RtDbscanRunner runner(std::vector<geom::Vec3>{}, 0.3f, opts);
  EXPECT_NO_THROW(runner.set_eps(0.5f));
  const auto r = runner.run(3);
  EXPECT_EQ(r.clustering.size(), 0u);
  EXPECT_EQ(r.clustering.cluster_count, 0u);
}

TEST(RtDbscan, TriangleModeWideWidthsMatchSphereMode) {
  // The §VI-C acceptance path: triangle geometry over the wide and
  // quantized kernels clusters identically to sphere mode.
  const auto dataset = data::taxi_gps(1200, 95);
  const Params params{0.3f, 10};
  const auto spheres = rt_dbscan(dataset.points, params);
  for (const rt::TraversalWidth width :
       {rt::TraversalWidth::kWide, rt::TraversalWidth::kWideQuantized}) {
    RtDbscanOptions opts;
    opts.geometry = GeometryMode::kTriangles;
    opts.device.build.width = width;
    const auto triangles = rt_dbscan(dataset.points, params, opts);
    const auto eq = dbscan::check_equivalent(
        dataset.points, params, spheres.clustering, triangles.clustering);
    EXPECT_TRUE(eq.equivalent) << rt::to_string(width) << ": " << eq.reason;
  }
}

TEST(PublicApi, ClusterConvenienceWrapper) {
  const auto pts = testutil::two_squares_and_outlier();
  const auto r = rtd::cluster(pts, 1.5f, 3);
  EXPECT_EQ(r.cluster_count, 2u);
  EXPECT_EQ(r.labels.size(), pts.size());
  EXPECT_EQ(r.labels[8], rtd::kNoise);
  EXPECT_GE(r.seconds, 0.0);
}

TEST(GeometryModeNames, ToString) {
  EXPECT_STREQ(to_string(GeometryMode::kSpheres), "spheres");
  EXPECT_STREQ(to_string(GeometryMode::kTriangles), "triangles");
}

}  // namespace
}  // namespace rtd::core
