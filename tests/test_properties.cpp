// Property-based (metamorphic) tests on DBSCAN invariants, run against
// RT-DBSCAN (the contribution) with the sequential implementation as an
// oracle where needed.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/rt_dbscan.hpp"
#include "dbscan/equivalence.hpp"
#include "data/generators.hpp"

namespace rtd {
namespace {

using dbscan::check_valid;
using dbscan::Params;
using geom::Vec3;

data::Dataset random_dataset(std::uint64_t seed) {
  // Rotate through generators for variety.
  switch (seed % 5) {
    case 0: return data::taxi_gps(1500, seed);
    case 1: return data::road_network(1500, seed);
    case 2: return data::gaussian_blobs(1500, 4, 0.6f, 30.0f, 2, seed);
    case 3: return data::ionosphere3d(1500, seed);
    default: return data::two_rings(1500, seed);
  }
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, OutputIsInternallyValid) {
  const auto dataset = random_dataset(GetParam());
  const Params params{dataset.dims == 3 ? 2.0f : 0.4f, 8};
  const auto r = core::rt_dbscan(dataset.points, params);
  const auto valid = check_valid(dataset.points, params, r.clustering);
  EXPECT_TRUE(valid.equivalent) << valid.reason;
}

TEST_P(SeedSweep, TranslationInvariance) {
  // DBSCAN structure must be invariant under rigid translation.
  auto dataset = random_dataset(GetParam() + 100);
  const Params params{dataset.dims == 3 ? 2.0f : 0.4f, 8};
  const auto before = core::rt_dbscan(dataset.points, params);

  const Vec3 shift{123.0f, -55.0f, dataset.dims == 3 ? 17.0f : 0.0f};
  for (auto& p : dataset.points) p += shift;
  const auto after = core::rt_dbscan(dataset.points, params);

  EXPECT_EQ(before.clustering.is_core, after.clustering.is_core);
  EXPECT_EQ(before.clustering.cluster_count, after.clustering.cluster_count);
  EXPECT_EQ(before.clustering.noise_count(), after.clustering.noise_count());
  EXPECT_GT(dbscan::adjusted_rand_index(before.clustering.labels,
                                        after.clustering.labels),
            0.99);
}

TEST_P(SeedSweep, UniformScalingWithEpsScalesIdentically) {
  // Scaling all coordinates and eps by the same factor preserves structure.
  auto dataset = random_dataset(GetParam() + 200);
  const float base_eps = dataset.dims == 3 ? 2.0f : 0.4f;
  const Params params{base_eps, 8};
  const auto before = core::rt_dbscan(dataset.points, params);

  const float k = 3.0f;
  for (auto& p : dataset.points) p *= k;
  // Scale slightly above k*eps to absorb float rounding of boundary pairs
  // (points at distance exactly eps can flip with scaled arithmetic).
  const Params scaled{base_eps * k * 1.0001f, 8};
  const auto after = core::rt_dbscan(dataset.points, scaled);

  // Allow a tiny number of boundary flips from float rounding.
  std::size_t core_flips = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    core_flips += before.clustering.is_core[i] != after.clustering.is_core[i];
  }
  EXPECT_LE(core_flips, dataset.size() / 200);
}

TEST_P(SeedSweep, EpsMonotonicity) {
  // Growing eps can only grow each point's neighborhood: the core-point set
  // is monotone in eps.
  const auto dataset = random_dataset(GetParam() + 300);
  const float eps_small = dataset.dims == 3 ? 1.0f : 0.25f;
  const auto small = core::rt_dbscan(dataset.points, {eps_small, 8});
  const auto large = core::rt_dbscan(dataset.points, {eps_small * 2, 8});
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_LE(small.clustering.is_core[i], large.clustering.is_core[i])
        << "point " << i << " lost core status when eps grew";
    EXPECT_LE(small.neighbor_counts[i], large.neighbor_counts[i]);
  }
}

TEST_P(SeedSweep, MinPtsMonotonicity) {
  // Growing minPts can only shrink the core set.
  const auto dataset = random_dataset(GetParam() + 400);
  const float eps = dataset.dims == 3 ? 2.0f : 0.4f;
  const auto lo = core::rt_dbscan(dataset.points, {eps, 5});
  const auto hi = core::rt_dbscan(dataset.points, {eps, 25});
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_GE(lo.clustering.is_core[i], hi.clustering.is_core[i]);
  }
  EXPECT_GE(lo.clustering.core_count(), hi.clustering.core_count());
  // And neighbor counts are identical (independent of minPts).
  EXPECT_EQ(lo.neighbor_counts, hi.neighbor_counts);
}

TEST_P(SeedSweep, DuplicatedDatasetKeepsStructure) {
  // Appending an exact copy of every point doubles every neighbor count + 1
  // (the twin); with doubled minPts - adjusted threshold the core set can
  // only grow.  Weak but implementation-revealing invariant: clustering
  // remains valid and cluster count cannot explode.
  auto dataset = random_dataset(GetParam() + 500);
  dataset.points.resize(1000);
  const float eps = dataset.dims == 3 ? 2.0f : 0.4f;
  const auto before = core::rt_dbscan(dataset.points, {eps, 8});

  auto doubled = dataset.points;
  doubled.insert(doubled.end(), dataset.points.begin(),
                 dataset.points.end());
  const auto after = core::rt_dbscan(doubled, {eps, 16});

  const auto valid = check_valid(doubled, {eps, 16}, after.clustering);
  EXPECT_TRUE(valid.equivalent) << valid.reason;
  // A point and its twin always share a fate.
  for (std::size_t i = 0; i < dataset.points.size(); ++i) {
    EXPECT_EQ(after.clustering.is_core[i],
              after.clustering.is_core[i + dataset.points.size()]);
  }
  // Each original core point has (2*count+1) >= 16 neighbors now iff
  // count >= 8 before (count excludes self; twin adds one).
  for (std::size_t i = 0; i < dataset.points.size(); ++i) {
    const bool was_core = before.neighbor_counts[i] + 1 >= 8;
    EXPECT_EQ(bool(after.clustering.is_core[i]), was_core) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Properties, NoisePointsHaveNoCoreNeighbors) {
  const auto dataset = data::taxi_gps(3000, 999);
  const Params params{0.3f, 12};
  const auto r = core::rt_dbscan(dataset.points, params);
  const float e2 = params.eps_squared();
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (r.clustering.labels[i] != dbscan::kNoiseLabel) continue;
    for (std::size_t j = 0; j < dataset.size(); ++j) {
      if (r.clustering.is_core[j]) {
        EXPECT_GT(geom::distance_squared(dataset.points[i],
                                         dataset.points[j]),
                  e2)
            << "noise point " << i << " within eps of core " << j;
      }
    }
  }
}

TEST(Properties, ClusterCountBoundedByCoreCount) {
  const auto dataset = data::gaussian_blobs(3000, 10, 0.5f, 60.0f, 2, 1000);
  const auto r = core::rt_dbscan(dataset.points, {0.4f, 6});
  EXPECT_LE(r.clustering.cluster_count, r.clustering.core_count());
}

TEST(Properties, PermutationInvariance) {
  // Reversing the point order must not change the structure.
  auto dataset = data::two_rings(2000, 1001);
  const Params params{0.8f, 5};
  const auto forward = core::rt_dbscan(dataset.points, params);

  std::reverse(dataset.points.begin(), dataset.points.end());
  const auto backward = core::rt_dbscan(dataset.points, params);

  EXPECT_EQ(forward.clustering.cluster_count,
            backward.clustering.cluster_count);
  EXPECT_EQ(forward.clustering.noise_count(),
            backward.clustering.noise_count());
  const std::size_t n = dataset.points.size();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(forward.clustering.is_core[i],
              backward.clustering.is_core[n - 1 - i]);
  }
}

}  // namespace
}  // namespace rtd
