// Installed-package consumer: exercises the session API end to end through
// the exported target only.  Exits non-zero on any contract violation so
// the CI job fails loudly.
#include <cstdio>
#include <vector>

#include "core/api.hpp"

int main() {
  // A tiny hand-checked dataset: two 4-point squares and one far outlier
  // (eps=1.5, minPts=3 -> two clusters, one noise point).
  std::vector<rtd::geom::Vec3> points = {
      {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0},
      {10, 10, 0}, {11, 10, 0}, {10, 11, 0}, {11, 11, 0},
      {100, 100, 0},
  };

  rtd::Clusterer session(points);
  // Copy: run() returns a view into session storage that the sweep()
  // below overwrites.
  const rtd::ClusterResult first = session.run(1.5f, 3);
  if (first.cluster_count != 2 || first.noise_count() != 1) {
    std::fprintf(stderr, "FAIL: expected 2 clusters + 1 noise, got %u + %zu\n",
                 first.cluster_count, first.noise_count());
    return 1;
  }
  if (first.members_of(first.labels[0]).size() != 4 ||
      first.noise()[0] != 8) {
    std::fprintf(stderr, "FAIL: membership views inconsistent\n");
    return 1;
  }

  // Sweep + refit/rebuild bookkeeping through the installed package.
  const std::vector<float> ladder = {1.2f, 1.5f, 2.0f};
  const auto curve = session.sweep(ladder, 3);
  if (curve.size() != ladder.size()) {
    std::fprintf(stderr, "FAIL: sweep size\n");
    return 1;
  }

  // The legacy one-shot wrapper still works.
  const rtd::ClusterResult one_shot = rtd::cluster(points, 1.5f, 3);
  if (one_shot.cluster_count != first.cluster_count) {
    std::fprintf(stderr, "FAIL: wrapper disagrees with session\n");
    return 1;
  }

  std::printf("consumer OK: %u clusters, backend %s\n", first.cluster_count,
              rtd::index::to_string(first.stats.backend));
  return 0;
}
