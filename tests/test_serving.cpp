// Concurrent serving layer: rtd::Clusterer::snapshot() and the const query
// overloads must (a) answer exactly like a brute-force oracle on every
// backend, (b) enforce each backend's radius rules, (c) keep an issued
// snapshot valid and UNCHANGED while the session retargets ε underneath it
// (shared_ptr-epoch reclamation — the writer swaps in a replacement instead
// of mutating a structure a reader may be traversing), and (d) stay
// data-race-free with any number of reader threads hammering the const path
// while a writer refits in a loop.  Run this binary under the `tsan` preset
// to get (d) checked by ThreadSanitizer, not just by assertion.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "core/clusterer.hpp"
#include "data/generators.hpp"

namespace rtd {
namespace {

using geom::Vec3;
using index::IndexKind;

/// Brute-force ε-neighborhood, ascending.  self = kNoSelf keeps `self` in.
std::vector<std::uint32_t> brute_neighbors(std::span<const Vec3> pts,
                                           const Vec3& center, float eps,
                                           std::uint32_t self) {
  const float eps2 = eps * eps;
  std::vector<std::uint32_t> out;
  for (std::uint32_t j = 0; j < pts.size(); ++j) {
    if (j != self && geom::distance_squared(center, pts[j]) <= eps2) {
      out.push_back(j);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Oracle parity of the const read path, per backend.
// ---------------------------------------------------------------------------

TEST(Serving, SnapshotMatchesBruteOracleOnEveryBackend) {
  const auto dataset = data::taxi_gps(1200, 81);
  const float eps = 0.3f;
  for (const IndexKind kind : index::kAllIndexKinds) {
    Clusterer session(dataset.points, Options().with_backend(kind));
    (void)session.run(eps, 8);
    const auto snap = session.snapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->eps(), eps);
    EXPECT_EQ(snap->backend(), kind);
    EXPECT_EQ(snap->size(), dataset.size());
    for (const std::uint32_t q : {0u, 321u, 1199u}) {
      const Vec3& c = dataset.points[q];
      // Off-dataset center semantics: q itself is included.
      EXPECT_EQ(snap->query_neighbors(c),
                brute_neighbors(dataset.points, c, eps, index::kNoSelf))
          << index::to_string(kind);
      // Dataset-index form excludes q.
      EXPECT_EQ(snap->query_neighbors(q),
                brute_neighbors(dataset.points, c, eps, q))
          << index::to_string(kind);
      // Explicit smaller radius is legal on EVERY backend (kBvhRt filters
      // its built-ε enumeration exactly; the grid's one-ring covers it).
      const float smaller = eps * 0.6f;
      EXPECT_EQ(snap->query_neighbors(c, smaller),
                brute_neighbors(dataset.points, c, smaller, index::kNoSelf))
          << index::to_string(kind);
      EXPECT_EQ(snap->query_count(c, smaller),
                brute_neighbors(dataset.points, c, smaller, index::kNoSelf)
                    .size())
          << index::to_string(kind);
      // The session-level const overloads serve the same snapshot.
      EXPECT_EQ(std::as_const(session).query_neighbors(c),
                snap->query_neighbors(c));
      EXPECT_EQ(std::as_const(session).query_neighbors(q),
                snap->query_neighbors(q));
    }
  }
}

TEST(Serving, RadiusRulesPerBackend) {
  const auto dataset = data::taxi_gps(800, 82);
  const float eps = 0.25f;
  const float larger = eps * 1.7f;
  const Vec3 c = dataset.points[100];
  for (const IndexKind kind : index::kAllIndexKinds) {
    Clusterer session(dataset.points, Options().with_backend(kind));
    (void)session.run(eps, 5);
    const auto snap = session.snapshot();
    const bool radius_agnostic = kind == IndexKind::kPointBvh ||
                                 kind == IndexKind::kBruteForce ||
                                 kind == IndexKind::kDenseBox;
    if (radius_agnostic) {
      // Larger-than-built queries are legal where the structure doesn't
      // bake the radius in.
      EXPECT_EQ(snap->query_neighbors(c, larger),
                brute_neighbors(dataset.points, c, larger, index::kNoSelf))
          << index::to_string(kind);
    } else {
      // kGrid's one-ring guarantee and kBvhRt's baked sphere radius cannot
      // answer a larger ball: loud error, not silent truncation.
      EXPECT_THROW((void)snap->query_neighbors(c, larger),
                   std::invalid_argument)
          << index::to_string(kind);
    }
  }
}

// ---------------------------------------------------------------------------
// Epoch reclamation: retargets never mutate an issued snapshot.
// ---------------------------------------------------------------------------

TEST(Serving, SnapshotSurvivesSessionRetargetUnchanged) {
  const auto dataset = data::taxi_gps(1000, 83);
  const float eps1 = 0.2f;
  const float eps2 = 0.45f;
  Clusterer session(dataset.points,
                    Options().with_backend(IndexKind::kBvhRt));
  (void)session.run(eps1, 6);
  const auto old_snap = session.snapshot();
  EXPECT_EQ(old_snap->eps(), eps1);

  // Retarget the session.  The old snapshot is aliased, so the writer must
  // build a REPLACEMENT — the old structure keeps answering at eps1.
  (void)session.run(eps2, 6);
  EXPECT_EQ(old_snap->eps(), eps1);
  const auto new_snap = session.snapshot();
  EXPECT_EQ(new_snap->eps(), eps2);
  EXPECT_NE(old_snap.get(), new_snap.get());
  for (const std::uint32_t q : {13u, 500u, 999u}) {
    const Vec3& c = dataset.points[q];
    EXPECT_EQ(old_snap->query_neighbors(c),
              brute_neighbors(dataset.points, c, eps1, index::kNoSelf));
    EXPECT_EQ(new_snap->query_neighbors(c),
              brute_neighbors(dataset.points, c, eps2, index::kNoSelf));
  }

  // Dropping the session entirely must not invalidate a held snapshot
  // (it co-owns the index AND the point storage).
  auto parked = session.snapshot();
  {
    Clusterer moved = std::move(session);
  }  // session destroyed
  EXPECT_EQ(parked->query_neighbors(dataset.points[13]),
            brute_neighbors(dataset.points, dataset.points[13], eps2,
                            index::kNoSelf));
}

TEST(Serving, SnapshotIsCachedUntilRetarget) {
  const auto dataset = data::taxi_gps(400, 84);
  Clusterer session(dataset.points);
  (void)session.run(0.3f, 5);
  const auto a = session.snapshot();
  const auto b = session.snapshot();
  EXPECT_EQ(a.get(), b.get());  // steady state: one atomic load, same object
  (void)session.run(0.3f, 9);   // min_pts-only rerun: index untouched
  EXPECT_EQ(session.snapshot().get(), a.get());
  (void)session.run(0.5f, 5);  // ε retarget: republish
  EXPECT_NE(session.snapshot().get(), a.get());
}

// ---------------------------------------------------------------------------
// Batched queries.
// ---------------------------------------------------------------------------

TEST(Serving, QueryBatchMatchesOracleInCsrForm) {
  const auto dataset = data::taxi_gps(1500, 85);
  const float built = 0.35f;
  for (const IndexKind kind :
       {IndexKind::kBvhRt, IndexKind::kGrid, IndexKind::kPointBvh}) {
    Clusterer session(dataset.points,
                      Options().with_backend(kind).with_threads(1));
    (void)session.run(built, 8);

    std::vector<Vec3> centers;
    for (std::uint32_t q = 0; q < dataset.size(); q += 97) {
      centers.push_back(dataset.points[q]);
    }
    centers.push_back(Vec3{0.1f, 0.2f, 0.0f});  // off-dataset center
    const float eps = built * 0.8f;  // below built: legal on all three
    const BatchQueryResult batch =
        std::as_const(session).query_batch(centers, eps);

    ASSERT_EQ(batch.query_count(), centers.size());
    ASSERT_EQ(batch.starts.size(), centers.size() + 1);
    EXPECT_EQ(batch.starts.front(), 0u);
    EXPECT_EQ(batch.starts.back(), batch.ids.size());
    for (std::size_t q = 0; q < centers.size(); ++q) {
      const auto got = batch.neighbors_of(q);
      const auto want = brute_neighbors(dataset.points, centers[q], eps,
                                        index::kNoSelf);
      ASSERT_EQ(got.size(), want.size())
          << index::to_string(kind) << " center " << q;
      EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
          << index::to_string(kind) << " center " << q;
      EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    }
    // Out-of-range bucket: empty view, not UB.
    EXPECT_TRUE(batch.neighbors_of(centers.size()).empty());

    // The _into form refills reused buffers with identical content.
    const auto snap = session.snapshot();
    BatchQueryResult again;
    snap->query_batch_into(centers, eps, /*threads=*/1, again);
    EXPECT_EQ(again.ids, batch.ids);
    EXPECT_EQ(again.starts, batch.starts);

    // Empty center list: well-formed empty result.
    const BatchQueryResult empty = snap->query_batch({}, eps);
    EXPECT_EQ(empty.query_count(), 0u);
    EXPECT_TRUE(empty.ids.empty());
  }
}

// ---------------------------------------------------------------------------
// Validation and lifecycle errors.
// ---------------------------------------------------------------------------

TEST(Serving, RejectsInvalidRequests) {
  const auto dataset = data::taxi_gps(300, 86);
  const float nan = std::numeric_limits<float>::quiet_NaN();

  // Before the first run there is no index: logic_error, loudly.
  Clusterer fresh(dataset.points);
  EXPECT_THROW((void)fresh.snapshot(), std::logic_error);
  EXPECT_THROW((void)std::as_const(fresh).query_neighbors(Vec3{0, 0, 0}),
               std::logic_error);
  EXPECT_THROW((void)std::as_const(fresh).query_neighbors(0u),
               std::logic_error);

  // Triangle-geometry sessions are excluded from serving altogether.
  Clusterer tri(dataset.points,
                Options().with_geometry(core::GeometryMode::kTriangles));
  (void)tri.run(0.3f, 5);
  EXPECT_THROW((void)tri.snapshot(), std::logic_error);

  Clusterer session(dataset.points);
  (void)session.run(0.3f, 5);
  const auto snap = session.snapshot();
  const Vec3 bad_center{0.0f, nan, 0.0f};
  EXPECT_THROW((void)snap->query_neighbors(bad_center),
               std::invalid_argument);
  EXPECT_THROW((void)snap->query_neighbors(Vec3{0, 0, 0}, 0.0f),
               std::invalid_argument);
  EXPECT_THROW((void)snap->query_neighbors(Vec3{0, 0, 0}, nan),
               std::invalid_argument);
  EXPECT_THROW((void)snap->query_neighbors(9999u), std::invalid_argument);
  EXPECT_THROW((void)std::as_const(session).query_neighbors(9999u),
               std::invalid_argument);
  // Batch validation happens up front, BEFORE any parallel region.
  const std::vector<Vec3> bad_batch = {Vec3{0, 0, 0}, bad_center};
  EXPECT_THROW((void)snap->query_batch(bad_batch, 0.2f),
               std::invalid_argument);
  EXPECT_THROW((void)snap->query_batch(bad_batch, nan),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The concurrency hammer: N reader threads vs a retargeting writer.
// Assertion-checked here; the `tsan` preset additionally runs this whole
// binary under ThreadSanitizer.
// ---------------------------------------------------------------------------

TEST(ServingConcurrent, ReadersNeverTearWhileWriterRefits) {
  const auto dataset = data::taxi_gps(600, 87);
  const float eps1 = 0.2f;
  const float eps2 = 0.4f;
  constexpr int kReaders = 4;
  constexpr int kWriterRetargets = 60;

  // Probe points + their oracle neighborhoods at BOTH ladder values — a
  // coherent snapshot answers entirely at one of the two.
  const std::vector<std::uint32_t> probes = {5u, 123u, 321u, 599u};
  std::vector<std::vector<std::uint32_t>> want1, want2;
  for (const std::uint32_t q : probes) {
    want1.push_back(brute_neighbors(dataset.points, dataset.points[q], eps1,
                                    index::kNoSelf));
    want2.push_back(brute_neighbors(dataset.points, dataset.points[q], eps2,
                                    index::kNoSelf));
    ASSERT_NE(want1.back(), want2.back()) << q;  // torn results detectable
  }

  for (const IndexKind kind : {IndexKind::kBvhRt, IndexKind::kGrid}) {
    // threads=1: every query launch runs inline on the calling thread, so
    // reader parallelism comes from the std::threads below (and TSan sees
    // every access — no uninstrumented OpenMP runtime on the read path).
    Clusterer session(dataset.points,
                      Options().with_backend(kind).with_threads(1));
    (void)session.run(eps1, 5);

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> torn{0};
    std::atomic<std::uint64_t> bad_eps{0};

    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        std::size_t p = static_cast<std::size_t>(r) % probes.size();
        while (!done.load(std::memory_order_relaxed)) {
          const auto snap = session.snapshot();
          const float se = snap->eps();
          if (se != eps1 && se != eps2) {
            bad_eps.fetch_add(1, std::memory_order_relaxed);
          }
          const auto& want = se == eps1 ? want1[p] : want2[p];
          if (snap->query_neighbors(dataset.points[probes[p]]) != want) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
          // The session-level const overload picks its own snapshot: the
          // answer must be ENTIRELY at one ε, never a mix.
          const auto direct =
              std::as_const(session).query_neighbors(dataset.points[probes[p]]);
          if (direct != want1[p] && direct != want2[p]) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
          reads.fetch_add(1, std::memory_order_relaxed);
          p = (p + 1) % probes.size();
        }
      });
    }

    // Writer: retarget ε back and forth.  Every retarget that finds its
    // structure aliased by a snapshot swaps in a replacement.
    for (int i = 0; i < kWriterRetargets; ++i) {
      (void)session.run(i % 2 == 0 ? eps2 : eps1, 5);
    }
    done.store(true, std::memory_order_relaxed);
    for (auto& t : readers) t.join();

    EXPECT_EQ(torn.load(), 0u) << index::to_string(kind);
    EXPECT_EQ(bad_eps.load(), 0u) << index::to_string(kind);
    EXPECT_GT(reads.load(), 0u) << index::to_string(kind);

    // The hammer must not have corrupted the session: a final clustering
    // still matches a fresh one.
    const ClusterResult& after = session.run(eps1, 5);
    Clusterer oracle(dataset.points,
                     Options().with_backend(kind).with_threads(1));
    const ClusterResult& fresh = oracle.run(eps1, 5);
    EXPECT_EQ(after.labels, fresh.labels) << index::to_string(kind);
    EXPECT_EQ(after.cluster_count, fresh.cluster_count)
        << index::to_string(kind);
  }
}

TEST(ServingConcurrent, ColdSnapshotRaceYieldsOneSharedSnapshot) {
  // Many threads racing through the create-on-first-access slow path must
  // all come back with the SAME published snapshot (double-checked lock).
  const auto dataset = data::taxi_gps(500, 88);
  Clusterer session(dataset.points, Options().with_threads(1));
  (void)session.run(0.3f, 5);

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const IndexSnapshot>> got(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      got[static_cast<std::size_t>(t)] = session.snapshot();
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got[static_cast<std::size_t>(t)].get(), got[0].get());
  }
}

TEST(ServingConcurrent, ConcurrentBatchesDuringSweep) {
  // sweep() is a writer that retargets per ladder entry; batched const
  // readers running concurrently must see coherent ladder-ε answers.
  const auto dataset = data::taxi_gps(700, 89);
  const std::vector<float> ladder = {0.2f, 0.3f, 0.45f};
  Clusterer session(dataset.points,
                    Options().with_backend(IndexKind::kBvhRt).with_threads(1));
  (void)session.run(ladder.front(), 5);

  std::vector<Vec3> centers(dataset.points.begin(),
                            dataset.points.begin() + 64);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> batches{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      BatchQueryResult batch;
      while (!done.load(std::memory_order_relaxed)) {
        const auto snap = session.snapshot();
        // Query at the snapshot's own ε: legal on every backend, and the
        // oracle is recomputable from eps() afterwards.
        const float se = snap->eps();
        snap->query_batch_into(centers, se, /*threads=*/1, batch);
        for (std::size_t q = 0; q < centers.size(); q += 13) {
          const auto got = batch.neighbors_of(q);
          const auto want =
              brute_neighbors(dataset.points, centers[q], se, index::kNoSelf);
          if (got.size() != want.size() ||
              !std::equal(got.begin(), got.end(), want.begin())) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
        batches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int i = 0; i < 8; ++i) {
    const auto curve = session.sweep(ladder, 5);
    ASSERT_EQ(curve.size(), ladder.size());
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(batches.load(), 0u);
}

TEST(ServingConcurrent, ReadersHammerSnapshotsDuringLiveMutations) {
  // Writer streams insert()/remove() batches while reader threads hammer
  // snapshot queries.  Every snapshot is an EPOCH: its size must be one of
  // the writer's published point counts, and every answer must be
  // geometrically valid against the snapshot's own points — a torn
  // structure (mid-mutation index, relocated storage) yields out-of-range
  // ids or neighbors outside ε.  Run under the `tsan` preset for the
  // data-race leg.
  const auto dataset = data::taxi_gps(500, 88);
  const float eps = 0.25f;
  constexpr int kReaders = 4;
  constexpr int kWriterBatches = 40;
  constexpr std::size_t kBatch = 5;
  const Vec3 probe{0.5f, 0.5f, 0.0f};
  const auto extra = data::taxi_gps(kWriterBatches * kBatch, 89);

  std::vector<std::size_t> valid_sizes;
  for (int b = 0; b <= kWriterBatches; ++b) {
    valid_sizes.push_back(dataset.size() + static_cast<std::size_t>(b) * kBatch);
  }

  for (const IndexKind kind : {IndexKind::kBvhRt, IndexKind::kGrid}) {
    Clusterer session(dataset.points,
                      Options().with_backend(kind).with_threads(1));
    (void)session.run(eps, 5);

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> torn{0};

    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&] {
        const float eps2 = eps * eps;
        while (!done.load(std::memory_order_relaxed)) {
          const auto snap = session.snapshot();
          if (std::find(valid_sizes.begin(), valid_sizes.end(),
                        snap->size()) == valid_sizes.end()) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
          const auto ids = snap->query_neighbors(probe);
          const std::span<const Vec3> pts = snap->points();
          std::uint32_t prev = 0;
          bool first = true;
          for (const std::uint32_t j : ids) {
            const bool in_range = j < pts.size();
            const bool in_ball =
                in_range && geom::distance_squared(probe, pts[j]) <= eps2;
            const bool ascending = first || j > prev;
            if (!in_range || !in_ball || !ascending) {
              torn.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            prev = j;
            first = false;
          }
          reads.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    // Writer: stream inserts, with a removal wave every fourth batch.
    std::uint32_t next_removal = 3;
    for (int b = 0; b < kWriterBatches; ++b) {
      (void)session.insert(
          std::span<const Vec3>(extra.points)
              .subspan(static_cast<std::size_t>(b) * kBatch, kBatch));
      if (b % 4 == 3) {
        std::vector<std::uint32_t> ids;
        while (ids.size() < 3) {
          if (session.is_live(next_removal)) ids.push_back(next_removal);
          next_removal += 7;
        }
        session.remove(ids);
      }
    }
    // Small batches repair in microseconds, so the writer can finish all
    // its batches before a reader thread even starts.  Keep serving the
    // final snapshot until every reader got at least one read in.
    while (reads.load(std::memory_order_relaxed) <
           static_cast<std::uint64_t>(kReaders)) {
      std::this_thread::yield();
    }
    done.store(true, std::memory_order_relaxed);
    for (auto& t : readers) t.join();

    EXPECT_EQ(torn.load(), 0u) << index::to_string(kind);
    EXPECT_GT(reads.load(), 0u) << index::to_string(kind);

    // The hammer must not have corrupted the session: the maintained
    // neighbor counts still match a brute count over the live set.
    const ClusterResult& r = session.result();
    const float eps2 = eps * eps;
    for (const std::uint32_t q : {0u, 250u, 499u, 520u}) {
      if (!session.is_live(q)) continue;
      std::uint32_t want = 0;
      for (std::uint32_t j = 0; j < session.size(); ++j) {
        if (j != q && session.is_live(j) &&
            geom::distance_squared(session.points()[q],
                                   session.points()[j]) <= eps2) {
          ++want;
        }
      }
      EXPECT_EQ(r.neighbor_counts[q], want)
          << index::to_string(kind) << " slot " << q;
    }
  }
}

}  // namespace
}  // namespace rtd
