#include "dbscan/gdbscan.hpp"

#include <gtest/gtest.h>

#include "data/generators.hpp"
#include "dbscan_test_util.hpp"

namespace rtd::dbscan {
namespace {

using testutil::expect_matches_reference;

TEST(Gdbscan, RejectsBadParams) {
  const std::vector<geom::Vec3> pts{{0, 0, 0}};
  EXPECT_THROW(gdbscan(pts, {0.0f, 3}), std::invalid_argument);
  EXPECT_THROW(gdbscan(pts, {1.0f, 0}), std::invalid_argument);
}

TEST(Gdbscan, EmptyInput) {
  const std::vector<geom::Vec3> pts;
  const auto r = gdbscan(pts, {1.0f, 3});
  EXPECT_EQ(r.clustering.size(), 0u);
  EXPECT_EQ(r.edge_count, 0u);
}

TEST(Gdbscan, MatchesReferenceOnHandCheckedData) {
  const auto pts = testutil::two_squares_and_outlier();
  const Params params{1.5f, 3};
  const auto r = gdbscan(pts, params);
  expect_matches_reference(pts, params, r.clustering, "gdbscan");
}

TEST(Gdbscan, MatchesReferenceOnAmbiguousBorder) {
  const auto pts = testutil::ambiguous_border();
  const Params params{2.05f, 6};
  const auto r = gdbscan(pts, params);
  expect_matches_reference(pts, params, r.clustering, "gdbscan");
}

class GdbscanDatasetTest
    : public ::testing::TestWithParam<std::tuple<data::PaperDataset, float,
                                                 std::uint32_t>> {};

TEST_P(GdbscanDatasetTest, MatchesReference) {
  const auto [which, eps, min_pts] = GetParam();
  const auto dataset = data::make_paper_dataset(which, 2000, 78);
  const Params params{eps, min_pts};
  const auto r = gdbscan(dataset.points, params);
  expect_matches_reference(dataset.points, params, r.clustering, "gdbscan");
}

INSTANTIATE_TEST_SUITE_P(
    PaperDatasets, GdbscanDatasetTest,
    ::testing::Values(
        std::make_tuple(data::PaperDataset::k3DRoad, 0.5f, 10u),
        std::make_tuple(data::PaperDataset::kPorto, 0.3f, 10u),
        std::make_tuple(data::PaperDataset::kNgsim, 0.05f, 10u),
        std::make_tuple(data::PaperDataset::k3DIono, 2.0f, 10u)));

TEST(Gdbscan, EdgeCountMatchesDegreeSum) {
  const auto pts = testutil::chain(10);  // each interior point has 3 nbrs
  const auto r = gdbscan(pts, {1.1f, 3});
  // Chain of 10 with eps 1.1: degrees are 2 at the ends, 3 inside (self
  // included): 2*2 + 8*3 = 28 directed edges.
  EXPECT_EQ(r.edge_count, 28u);
  EXPECT_GT(r.graph_bytes, 0u);
}

TEST(Gdbscan, ThrowsDeviceMemoryErrorWhenGraphTooLarge) {
  // A dense blob where every point neighbors every other: n^2 edges.
  const auto dataset = data::single_blob(2000, 0.01f, 41);
  GdbscanOptions opts;
  opts.memory_budget_bytes = 1 << 20;  // 1 MiB: far too small for 4M edges
  try {
    gdbscan(dataset.points, {1.0f, 10}, opts);
    FAIL() << "expected DeviceMemoryError";
  } catch (const DeviceMemoryError& e) {
    EXPECT_GT(e.required, e.budget);
    EXPECT_EQ(e.budget, opts.memory_budget_bytes);
  }
}

TEST(Gdbscan, SucceedsWithinBudget) {
  const auto dataset = data::taxi_gps(2000, 42);
  GdbscanOptions opts;
  opts.memory_budget_bytes = 1ull << 30;
  const auto r = gdbscan(dataset.points, {0.3f, 10}, opts);
  EXPECT_LE(r.graph_bytes, opts.memory_budget_bytes);
  expect_matches_reference(dataset.points, {0.3f, 10}, r.clustering,
                           "gdbscan");
}

TEST(Gdbscan, SingleThreadMatchesParallel) {
  const auto dataset = data::two_rings(2000, 43);
  const Params params{0.8f, 5};
  GdbscanOptions serial;
  serial.threads = 1;
  const auto a = gdbscan(dataset.points, params, serial);
  const auto b = gdbscan(dataset.points, params);
  const auto eq =
      check_equivalent(dataset.points, params, a.clustering, b.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.reason;
}

TEST(Gdbscan, ReportsPhaseTimes) {
  const auto dataset = data::taxi_gps(1500, 44);
  const auto r = gdbscan(dataset.points, {0.3f, 10});
  EXPECT_GT(r.graph_build_seconds, 0.0);
  EXPECT_GE(r.bfs_seconds, 0.0);
}

}  // namespace
}  // namespace rtd::dbscan
