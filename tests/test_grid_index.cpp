#include "dbscan/grid_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "data/generators.hpp"

namespace rtd::dbscan {
namespace {

using geom::Vec3;

std::set<std::uint32_t> brute_neighbors(std::span<const Vec3> points,
                                        const Vec3& q, float radius) {
  std::set<std::uint32_t> out;
  const float r2 = radius * radius;
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    if (geom::distance_squared(q, points[i]) <= r2) out.insert(i);
  }
  return out;
}

TEST(GridIndex, RejectsBadCellSize) {
  const std::vector<Vec3> pts{{0, 0, 0}};
  EXPECT_THROW(GridIndex(pts, 0.0f), std::invalid_argument);
  EXPECT_THROW(GridIndex(pts, -1.0f), std::invalid_argument);
}

TEST(GridIndex, EmptyInput) {
  const std::vector<Vec3> pts;
  GridIndex index(pts, 1.0f);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.count_neighbors(Vec3{0, 0, 0}, 1.0f), 0u);
}

TEST(GridIndex, SelfIsItsOwnNeighbor) {
  const std::vector<Vec3> pts{{1, 1, 0}, {5, 5, 0}};
  GridIndex index(pts, 0.5f);
  const auto n = index.neighbors(pts[0], 0.5f);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0], 0u);
}

TEST(GridIndex, MatchesBruteForceOnRandomData) {
  Rng rng(81);
  std::vector<Vec3> pts;
  for (int i = 0; i < 3000; ++i) {
    pts.push_back(Vec3{rng.uniformf(0, 10), rng.uniformf(0, 10),
                       rng.uniformf(0, 10)});
  }
  const float radius = 0.4f;
  GridIndex index(pts, radius);
  for (int trial = 0; trial < 300; ++trial) {
    const Vec3 q{rng.uniformf(-1, 11), rng.uniformf(-1, 11),
                 rng.uniformf(-1, 11)};
    const auto got = index.neighbors(q, radius);
    const std::set<std::uint32_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set.size(), got.size()) << "duplicate ids";
    EXPECT_EQ(got_set, brute_neighbors(pts, q, radius)) << "trial " << trial;
  }
}

TEST(GridIndex, MatchesBruteForceOn2D) {
  const auto dataset = data::taxi_gps(5000, 3);
  const float radius = 0.25f;
  GridIndex index(dataset.points, radius);
  Rng rng(82);
  for (int trial = 0; trial < 200; ++trial) {
    const auto pick = rng.below(dataset.points.size());
    const Vec3 q = dataset.points[pick];
    const auto got = index.neighbors(q, radius);
    const std::set<std::uint32_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, brute_neighbors(dataset.points, q, radius));
    EXPECT_EQ(index.count_neighbors(q, radius), got.size());
  }
}

TEST(GridIndex, SmallerQueryRadiusThanCellWorks) {
  Rng rng(83);
  std::vector<Vec3> pts;
  for (int i = 0; i < 2000; ++i) {
    pts.push_back(Vec3{rng.uniformf(0, 5), rng.uniformf(0, 5), 0.0f});
  }
  GridIndex index(pts, 1.0f);  // cell larger than query radius
  for (int trial = 0; trial < 100; ++trial) {
    const Vec3 q{rng.uniformf(0, 5), rng.uniformf(0, 5), 0.0f};
    const auto got = index.neighbors(q, 0.3f);
    const std::set<std::uint32_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, brute_neighbors(pts, q, 0.3f));
  }
}

TEST(GridIndex, DuplicatePointsAllReported) {
  std::vector<Vec3> pts(100, Vec3{2, 3, 0});
  pts.push_back(Vec3{10, 10, 0});
  GridIndex index(pts, 1.0f);
  EXPECT_EQ(index.count_neighbors(Vec3{2, 3, 0}, 1.0f), 100u);
}

TEST(GridIndex, NegativeCoordinatesWork) {
  std::vector<Vec3> pts{{-5.5f, -3.2f, 0}, {-5.6f, -3.1f, 0}, {4, 4, 0}};
  GridIndex index(pts, 0.5f);
  EXPECT_EQ(index.count_neighbors(pts[0], 0.5f), 2u);
  EXPECT_EQ(index.count_neighbors(pts[2], 0.5f), 1u);
}

TEST(GridIndex, BoundaryDistanceIsInclusive) {
  std::vector<Vec3> pts{{0, 0, 0}, {1, 0, 0}};
  GridIndex index(pts, 1.0f);
  // Exactly eps apart: included (<=).
  EXPECT_EQ(index.count_neighbors(pts[0], 1.0f), 2u);
  EXPECT_EQ(index.count_neighbors(pts[0], 0.999f), 1u);
}

}  // namespace
}  // namespace rtd::dbscan
