// SphereAccel / TriangleAccel / Context launch behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/rng.hpp"
#include "data/generators.hpp"
#include "rt/context.hpp"
#include "rt/scene.hpp"
#include "rt/tessellate.hpp"

namespace rtd::rt {
namespace {

using geom::Ray;
using geom::Vec3;

TEST(SphereAccel, BuildsValidBvhOverSpheres) {
  const auto dataset = data::taxi_gps(2000, 601);
  Context ctx;
  const auto accel = ctx.build_spheres(dataset.points, 0.4f);
  EXPECT_EQ(accel.size(), dataset.size());
  EXPECT_EQ(accel.radius(), 0.4f);
  EXPECT_GT(accel.build_stats().node_count, 0u);

  std::vector<geom::Aabb> bounds;
  for (const auto& c : accel.centers()) {
    bounds.push_back(geom::Aabb::of_sphere(c, accel.radius()));
  }
  EXPECT_TRUE(accel.bvh().validate(bounds).empty());
}

TEST(SphereAccel, OriginInsideMatchesDistance) {
  Context ctx;
  const auto accel = ctx.build_spheres({{0, 0, 0}, {3, 0, 0}}, 1.0f);
  const Ray at_origin = Ray::point_query(Vec3{0.5f, 0, 0});
  EXPECT_TRUE(accel.origin_inside(at_origin, 0));
  EXPECT_FALSE(accel.origin_inside(at_origin, 1));
  const Ray boundary = Ray::point_query(Vec3{1.0f, 0, 0});
  EXPECT_TRUE(accel.origin_inside(boundary, 0));  // inclusive
}

TEST(SphereAccel, IntersectionProgramCannotTerminate) {
  // OptiX semantics: trace() visits every candidate; the program has no
  // early-out channel (the paper's §VI-B constraint).  Verify all overlapping
  // spheres are reported even when the "program" stops recording.
  std::vector<Vec3> centers(50, Vec3{1, 1, 1});  // all overlapping
  Context ctx;
  const auto accel = ctx.build_spheres(centers, 1.0f);
  TraversalStats st;
  std::size_t calls = 0;
  accel.trace(Ray::point_query(Vec3{1, 1, 1}),
              [&](std::uint32_t) { ++calls; }, st);
  EXPECT_EQ(calls, centers.size());
  EXPECT_EQ(st.isect_calls, centers.size());
}

TEST(TriangleAccel, RejectsMismatchedOwners) {
  auto mesh = tessellate_spheres(std::vector<Vec3>{{0, 0, 0}}, 1.0f, 0);
  mesh.owners.pop_back();
  EXPECT_THROW(TriangleAccel(std::move(mesh.triangles),
                             std::move(mesh.owners), BuildOptions{}),
               std::invalid_argument);
}

TEST(TriangleAccel, AnyHitReceivesOwnersAndHitT) {
  const std::vector<Vec3> centers{{0, 0, 0}, {10, 0, 0}};
  Context ctx;
  const auto accel = ctx.build_triangles(centers, 1.0f, 1);
  EXPECT_EQ(accel.triangle_count(), 2u * 80u);

  // Ray from inside sphere 0, along +z: every anyhit owner must be 0 and
  // t within the circumscribed radius band.
  TraversalStats st;
  std::set<std::uint32_t> owners;
  accel.trace(Ray{{0, 0, 0}, {0, 0, 1}, 0.0f, 3.0f},
              [&](std::uint32_t owner, float t) {
                owners.insert(owner);
                EXPECT_GT(t, 0.5f);
                EXPECT_LT(t, 1.5f);
              },
              st);
  EXPECT_EQ(owners, std::set<std::uint32_t>{0u});
  EXPECT_GT(st.anyhit_calls, 0u);
  EXPECT_GE(st.isect_calls, st.anyhit_calls);
}

TEST(Context, LaunchRunsEveryRayExactlyOnce) {
  Context ctx;
  std::vector<std::atomic<int>> hits(10000);
  for (auto& h : hits) h.store(0);
  const auto stats = ctx.launch(hits.size(),
                                [&](std::size_t i, TraversalStats&) {
                                  hits[i].fetch_add(1);
                                });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(Context, ThreadOptionLimitsWorkers) {
  Context::Options opts;
  opts.threads = 2;
  Context ctx(opts);
  std::atomic<int> max_tid{0};
  ctx.launch(1000, [&](std::size_t, TraversalStats&) {
    int tid = omp_get_thread_num();
    int cur = max_tid.load();
    while (tid > cur && !max_tid.compare_exchange_weak(cur, tid)) {
    }
  });
  EXPECT_LT(max_tid.load(), 2);
}

TEST(Context, LaunchAggregatesPerThreadStats) {
  const auto dataset = data::taxi_gps(3000, 602);
  Context ctx;
  const auto accel = ctx.build_spheres(dataset.points, 0.3f);
  const auto stats = ctx.launch(
      dataset.size(), [&](std::size_t i, TraversalStats& st) {
        accel.trace(Ray::point_query(dataset.points[i]),
                    [](std::uint32_t) {}, st);
      });
  EXPECT_EQ(stats.work.rays, dataset.size());
  EXPECT_GT(stats.work.nodes_visited, dataset.size());
  EXPECT_GT(stats.nodes_per_ray(), 1.0);
}

TEST(Context, BuildOptionsPropagate) {
  Context::Options opts;
  opts.build.algorithm = BuildAlgorithm::kBinnedSah;
  opts.build.leaf_size = 2;
  Context ctx(opts);
  const auto dataset = data::taxi_gps(1000, 603);
  const auto accel = ctx.build_spheres(dataset.points, 0.3f);
  for (const auto& node : accel.bvh().nodes) {
    if (node.is_leaf()) {
      EXPECT_LE(node.count, 2u);
    }
  }
}

}  // namespace
}  // namespace rtd::rt
