#include "geom/aabb.hpp"

#include <gtest/gtest.h>

namespace rtd::geom {
namespace {

TEST(Aabb, DefaultIsEmpty) {
  const Aabb box;
  EXPECT_TRUE(box.is_empty());
  EXPECT_EQ(box.surface_area(), 0.0f);
}

TEST(Aabb, GrowPoint) {
  Aabb box;
  box.grow(Vec3{1.0f, 2.0f, 3.0f});
  EXPECT_FALSE(box.is_empty());
  EXPECT_EQ(box.lo, (Vec3{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(box.hi, (Vec3{1.0f, 2.0f, 3.0f}));
  box.grow(Vec3{-1.0f, 4.0f, 0.0f});
  EXPECT_EQ(box.lo, (Vec3{-1.0f, 2.0f, 0.0f}));
  EXPECT_EQ(box.hi, (Vec3{1.0f, 4.0f, 3.0f}));
}

TEST(Aabb, GrowBox) {
  Aabb a = Aabb::of_point(Vec3{0.0f, 0.0f, 0.0f});
  const Aabb b(Vec3{1.0f, 1.0f, 1.0f}, Vec3{2.0f, 2.0f, 2.0f});
  a.grow(b);
  EXPECT_EQ(a.lo, (Vec3{0.0f, 0.0f, 0.0f}));
  EXPECT_EQ(a.hi, (Vec3{2.0f, 2.0f, 2.0f}));
}

TEST(Aabb, OfSphere) {
  const Aabb box = Aabb::of_sphere(Vec3{1.0f, 2.0f, 3.0f}, 0.5f);
  EXPECT_EQ(box.lo, (Vec3{0.5f, 1.5f, 2.5f}));
  EXPECT_EQ(box.hi, (Vec3{1.5f, 2.5f, 3.5f}));
  EXPECT_EQ(box.center(), (Vec3{1.0f, 2.0f, 3.0f}));
}

TEST(Aabb, SurfaceArea) {
  const Aabb unit(Vec3{0.0f, 0.0f, 0.0f}, Vec3{1.0f, 1.0f, 1.0f});
  EXPECT_FLOAT_EQ(unit.surface_area(), 6.0f);
  const Aabb slab(Vec3{0.0f, 0.0f, 0.0f}, Vec3{2.0f, 3.0f, 0.0f});
  EXPECT_FLOAT_EQ(slab.surface_area(), 2.0f * (2.0f * 3.0f));
}

TEST(Aabb, ContainsPoint) {
  const Aabb box(Vec3{0.0f, 0.0f, 0.0f}, Vec3{1.0f, 1.0f, 1.0f});
  EXPECT_TRUE(box.contains(Vec3{0.5f, 0.5f, 0.5f}));
  EXPECT_TRUE(box.contains(Vec3{0.0f, 0.0f, 0.0f}));  // boundary inclusive
  EXPECT_TRUE(box.contains(Vec3{1.0f, 1.0f, 1.0f}));
  EXPECT_FALSE(box.contains(Vec3{1.1f, 0.5f, 0.5f}));
  EXPECT_FALSE(box.contains(Vec3{0.5f, -0.1f, 0.5f}));
}

TEST(Aabb, ContainsBox) {
  const Aabb outer(Vec3{0.0f, 0.0f, 0.0f}, Vec3{4.0f, 4.0f, 4.0f});
  const Aabb inner(Vec3{1.0f, 1.0f, 1.0f}, Vec3{2.0f, 2.0f, 2.0f});
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
}

TEST(Aabb, Overlaps) {
  const Aabb a(Vec3{0.0f, 0.0f, 0.0f}, Vec3{2.0f, 2.0f, 2.0f});
  const Aabb b(Vec3{1.0f, 1.0f, 1.0f}, Vec3{3.0f, 3.0f, 3.0f});
  const Aabb c(Vec3{2.5f, 2.5f, 2.5f}, Vec3{4.0f, 4.0f, 4.0f});
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_TRUE(b.overlaps(c));
  EXPECT_FALSE(a.overlaps(c));
  // Touching faces count as overlap (conservative for BVH pruning).
  const Aabb d(Vec3{2.0f, 0.0f, 0.0f}, Vec3{3.0f, 1.0f, 1.0f});
  EXPECT_TRUE(a.overlaps(d));
}

TEST(Aabb, WidestAxis) {
  EXPECT_EQ(Aabb(Vec3{0, 0, 0}, Vec3{3, 1, 1}).widest_axis(), 0);
  EXPECT_EQ(Aabb(Vec3{0, 0, 0}, Vec3{1, 3, 1}).widest_axis(), 1);
  EXPECT_EQ(Aabb(Vec3{0, 0, 0}, Vec3{1, 1, 3}).widest_axis(), 2);
}

TEST(Aabb, Unite) {
  const Aabb a(Vec3{0, 0, 0}, Vec3{1, 1, 1});
  const Aabb b(Vec3{2, 2, 2}, Vec3{3, 3, 3});
  const Aabb u = Aabb::unite(a, b);
  EXPECT_EQ(u.lo, (Vec3{0, 0, 0}));
  EXPECT_EQ(u.hi, (Vec3{3, 3, 3}));
  EXPECT_TRUE(u.contains(a));
  EXPECT_TRUE(u.contains(b));
}

TEST(Aabb, UniteWithEmptyIsIdentity) {
  const Aabb a(Vec3{0, 0, 0}, Vec3{1, 1, 1});
  const Aabb u = Aabb::unite(a, Aabb::empty());
  EXPECT_EQ(u.lo, a.lo);
  EXPECT_EQ(u.hi, a.hi);
}

TEST(Aabb, ExtentAndCenter) {
  const Aabb box(Vec3{1, 2, 3}, Vec3{5, 8, 11});
  EXPECT_EQ(box.extent(), (Vec3{4, 6, 8}));
  EXPECT_EQ(box.center(), (Vec3{3, 5, 7}));
}

}  // namespace
}  // namespace rtd::geom
