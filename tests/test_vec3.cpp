#include "geom/vec3.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rtd::geom {
namespace {

TEST(Vec3, DefaultConstructsToZero) {
  const Vec3 v;
  EXPECT_EQ(v.x, 0.0f);
  EXPECT_EQ(v.y, 0.0f);
  EXPECT_EQ(v.z, 0.0f);
}

TEST(Vec3, XyEmbedsAtZeroZ) {
  const Vec3 v = Vec3::xy(3.0f, -4.0f);
  EXPECT_EQ(v.x, 3.0f);
  EXPECT_EQ(v.y, -4.0f);
  EXPECT_EQ(v.z, 0.0f);
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0f, 2.0f, 3.0f};
  const Vec3 b{4.0f, -5.0f, 6.0f};
  EXPECT_EQ(a + b, (Vec3{5.0f, -3.0f, 9.0f}));
  EXPECT_EQ(a - b, (Vec3{-3.0f, 7.0f, -3.0f}));
  EXPECT_EQ(a * 2.0f, (Vec3{2.0f, 4.0f, 6.0f}));
  EXPECT_EQ(2.0f * a, a * 2.0f);
  EXPECT_EQ(a / 2.0f, (Vec3{0.5f, 1.0f, 1.5f}));
  EXPECT_EQ(-a, (Vec3{-1.0f, -2.0f, -3.0f}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1.0f, 1.0f, 1.0f};
  v += Vec3{1.0f, 2.0f, 3.0f};
  EXPECT_EQ(v, (Vec3{2.0f, 3.0f, 4.0f}));
  v -= Vec3{1.0f, 1.0f, 1.0f};
  EXPECT_EQ(v, (Vec3{1.0f, 2.0f, 3.0f}));
  v *= 3.0f;
  EXPECT_EQ(v, (Vec3{3.0f, 6.0f, 9.0f}));
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1.0f, 0.0f, 0.0f};
  const Vec3 y{0.0f, 1.0f, 0.0f};
  const Vec3 z{0.0f, 0.0f, 1.0f};
  EXPECT_EQ(dot(x, y), 0.0f);
  EXPECT_EQ(dot(x, x), 1.0f);
  EXPECT_EQ(cross(x, y), z);
  EXPECT_EQ(cross(y, z), x);
  EXPECT_EQ(cross(z, x), y);
  EXPECT_EQ(cross(y, x), -z);
}

TEST(Vec3, LengthAndNormalize) {
  const Vec3 v{3.0f, 4.0f, 0.0f};
  EXPECT_FLOAT_EQ(length_squared(v), 25.0f);
  EXPECT_FLOAT_EQ(length(v), 5.0f);
  const Vec3 n = normalized(v);
  EXPECT_FLOAT_EQ(length(n), 1.0f);
  EXPECT_FLOAT_EQ(n.x, 0.6f);
  EXPECT_FLOAT_EQ(n.y, 0.8f);
}

TEST(Vec3, NormalizeZeroVectorIsZero) {
  const Vec3 n = normalized(Vec3{});
  EXPECT_EQ(n, Vec3{});
}

TEST(Vec3, MinMax) {
  const Vec3 a{1.0f, 5.0f, -2.0f};
  const Vec3 b{3.0f, 2.0f, -1.0f};
  EXPECT_EQ(min(a, b), (Vec3{1.0f, 2.0f, -2.0f}));
  EXPECT_EQ(max(a, b), (Vec3{3.0f, 5.0f, -1.0f}));
}

TEST(Vec3, DistanceMatchesDistanceSquared) {
  const Vec3 a{0.0f, 0.0f, 0.0f};
  const Vec3 b{1.0f, 2.0f, 2.0f};
  EXPECT_FLOAT_EQ(distance_squared(a, b), 9.0f);
  EXPECT_FLOAT_EQ(distance(a, b), 3.0f);
  EXPECT_FLOAT_EQ(distance(a, b),
                  std::sqrt(distance_squared(a, b)));
}

TEST(Vec3, IndexOperator) {
  const Vec3 v{7.0f, 8.0f, 9.0f};
  EXPECT_EQ(v[0], 7.0f);
  EXPECT_EQ(v[1], 8.0f);
  EXPECT_EQ(v[2], 9.0f);
}

}  // namespace
}  // namespace rtd::geom
