#include "dsu/atomic_disjoint_set.hpp"
#include "dsu/disjoint_set.hpp"

#include <gtest/gtest.h>

#include <omp.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace rtd::dsu {
namespace {

TEST(DisjointSet, InitiallyAllSingletons) {
  DisjointSet dsu(10);
  EXPECT_EQ(dsu.size(), 10u);
  EXPECT_EQ(dsu.set_count(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(dsu.find(i), i);
    EXPECT_EQ(dsu.set_size(i), 1u);
  }
}

TEST(DisjointSet, UniteMergesAndCounts) {
  DisjointSet dsu(6);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(2, 3));
  EXPECT_FALSE(dsu.unite(1, 0));  // already merged
  EXPECT_EQ(dsu.set_count(), 4u);
  EXPECT_TRUE(dsu.same_set(0, 1));
  EXPECT_FALSE(dsu.same_set(0, 2));
  EXPECT_TRUE(dsu.unite(1, 3));
  EXPECT_TRUE(dsu.same_set(0, 2));
  EXPECT_EQ(dsu.set_size(3), 4u);
  EXPECT_EQ(dsu.set_count(), 3u);
}

TEST(DisjointSet, CanonicalLabelsAreDense) {
  DisjointSet dsu(7);
  dsu.unite(0, 3);
  dsu.unite(3, 6);
  dsu.unite(1, 2);
  const auto labels = dsu.canonical_labels();
  EXPECT_EQ(labels[0], labels[3]);
  EXPECT_EQ(labels[3], labels[6]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_NE(labels[0], labels[1]);
  const std::set<std::uint32_t> unique(labels.begin(), labels.end());
  EXPECT_EQ(unique.size(), dsu.set_count());
  EXPECT_EQ(*std::max_element(labels.begin(), labels.end()),
            unique.size() - 1);
}

TEST(DisjointSet, TransitiveChains) {
  DisjointSet dsu(1000);
  for (std::uint32_t i = 0; i + 1 < 1000; ++i) dsu.unite(i, i + 1);
  EXPECT_EQ(dsu.set_count(), 1u);
  EXPECT_TRUE(dsu.same_set(0, 999));
  EXPECT_EQ(dsu.set_size(500), 1000u);
}

TEST(AtomicDisjointSet, SequentialSemanticsMatchReference) {
  Rng rng(71);
  DisjointSet ref(500);
  AtomicDisjointSet con(500);
  for (int op = 0; op < 2000; ++op) {
    const auto a = static_cast<std::uint32_t>(rng.below(500));
    const auto b = static_cast<std::uint32_t>(rng.below(500));
    ref.unite(a, b);
    con.unite(a, b);
  }
  for (std::uint32_t i = 0; i < 500; ++i) {
    for (std::uint32_t j = i + 1; j < 500; j += 37) {
      EXPECT_EQ(ref.same_set(i, j), con.same_set(i, j))
          << "pair (" << i << "," << j << ")";
    }
  }
}

TEST(AtomicDisjointSet, RootsAreMinimalIndices) {
  // "Lower index wins" linking: the root of any set is its smallest member.
  AtomicDisjointSet dsu(100);
  dsu.unite(50, 10);
  dsu.unite(10, 70);
  dsu.unite(99, 70);
  EXPECT_EQ(dsu.find(50), 10u);
  EXPECT_EQ(dsu.find(99), 10u);
  EXPECT_EQ(dsu.find(10), 10u);
}

TEST(AtomicDisjointSet, ConcurrentRandomUnionsMatchSequential) {
  const std::size_t n = 20000;
  const std::size_t ops = 50000;
  Rng rng(72);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs(ops);
  for (auto& p : pairs) {
    p = {static_cast<std::uint32_t>(rng.below(n)),
         static_cast<std::uint32_t>(rng.below(n))};
  }

  DisjointSet ref(n);
  for (const auto& [a, b] : pairs) ref.unite(a, b);
  const auto ref_labels = ref.canonical_labels();

  AtomicDisjointSet con(n);
  parallel_for(ops, [&](std::size_t i) {
    con.unite(pairs[i].first, pairs[i].second);
  });
  const auto con_labels = con.canonical_labels();

  // Partitions must be identical (canonical labels may differ by renaming;
  // here both are first-occurrence dense labels over the same index order,
  // so they must be equal).
  EXPECT_EQ(ref_labels, con_labels);
}

TEST(AtomicDisjointSet, ConcurrentChainStress) {
  // All threads unite adjacent elements of one long chain: worst-case
  // contention; the final structure must be a single set.
  const std::size_t n = 100000;
  AtomicDisjointSet dsu(n);
  parallel_for(n - 1, [&](std::size_t i) {
    dsu.unite(static_cast<std::uint32_t>(i),
              static_cast<std::uint32_t>(i + 1));
  });
  EXPECT_EQ(dsu.set_count(), 1u);
  EXPECT_EQ(dsu.find(static_cast<std::uint32_t>(n - 1)), 0u);
}

TEST(AtomicDisjointSet, ConcurrentDisjointBlocksStayDisjoint) {
  // Threads build 100 separate blocks of 1000; no spurious merges allowed.
  const std::size_t blocks = 100;
  const std::size_t block_size = 1000;
  AtomicDisjointSet dsu(blocks * block_size);
  parallel_for(blocks * (block_size - 1), [&](std::size_t k) {
    const std::size_t block = k / (block_size - 1);
    const std::size_t off = k % (block_size - 1);
    const auto base = static_cast<std::uint32_t>(block * block_size);
    dsu.unite(base + static_cast<std::uint32_t>(off),
              base + static_cast<std::uint32_t>(off + 1));
  });
  EXPECT_EQ(dsu.set_count(), blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto base = static_cast<std::uint32_t>(b * block_size);
    EXPECT_EQ(dsu.find(base + 999), base);
    if (b > 0) {
      EXPECT_FALSE(dsu.same_set(base, base - 1));
    }
  }
}

TEST(AtomicDisjointSet, SameSetUnderConcurrentMutation) {
  // same_set(a, b) must never return true for elements in different final
  // sets.  We merge only even indices; odd indices stay singletons.
  const std::size_t n = 10000;
  AtomicDisjointSet dsu(n);
#pragma omp parallel
  {
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n / 2) - 1; ++i) {
      dsu.unite(static_cast<std::uint32_t>(2 * i),
                static_cast<std::uint32_t>(2 * i + 2));
      // Interleaved queries on odd elements (never united).
      EXPECT_FALSE(
          dsu.same_set(static_cast<std::uint32_t>(2 * i + 1),
                       static_cast<std::uint32_t>(2 * i + 3)));
    }
  }
  EXPECT_EQ(dsu.set_count(), 1u + n / 2);
}

}  // namespace
}  // namespace rtd::dsu
