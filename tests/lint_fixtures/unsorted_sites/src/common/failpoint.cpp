static const std::vector<std::string> kSites = {
    "beta.two",
    "alpha.one",  // out of order
};
