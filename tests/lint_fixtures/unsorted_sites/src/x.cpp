void f() {
  RTD_FAILPOINT("alpha.one");
  RTD_FAILPOINT("beta.two");
}
