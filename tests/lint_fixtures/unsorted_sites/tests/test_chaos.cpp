// alpha.one beta.two
