#pragma once

// Seeded violation: no lint:allow waiver on this one.
inline int& counter() {
  static thread_local int c = 0;
  return c;
}

// Waived: must NOT be reported.
inline int& waived_counter() {
  // lint:allow(static-thread-local): fixture waiver, reason recorded
  static thread_local int w = 0;
  return w;
}
