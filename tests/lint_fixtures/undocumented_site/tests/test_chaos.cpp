// coverage dispatch mentions alpha.one only
const bool a = site == "alpha.one";
