// Fixture mirror of the canonical registry shape.
static const std::vector<std::string> kSites = {
    "alpha.one",  // documented and used
    "beta.two",   // used but missing from docs + chaos coverage
};
