void f() {
  RTD_FAILPOINT("alpha.one");
  RTD_FAILPOINT("beta.two");
  RTD_FAILPOINT("gamma.rogue");  // not in the canonical list
}
