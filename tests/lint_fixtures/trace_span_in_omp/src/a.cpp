// Seeded violation: RTD_TRACE_SPAN inside an OpenMP parallel region.
// Standalone stub so the fixture needs no real telemetry header.
#define RTD_TRACE_SPAN(site) \
  do {                       \
  } while (false)

int work(int n) {
  int sum = 0;
#pragma omp parallel
  {
    RTD_TRACE_SPAN("fixture.braced");  // VIOLATION: span on a worker thread
    sum += n;
  }
#pragma omp parallel for
  for (int i = 0; i < n; ++i)
    RTD_TRACE_SPAN("fixture.single_stmt");  // VIOLATION: single-statement body
  RTD_TRACE_SPAN("fixture.serial");  // fine: serial boundary
  return sum;
}
