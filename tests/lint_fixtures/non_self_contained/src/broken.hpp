#pragma once

// Seeded violation: uses std::vector without including <vector>; only
// compiles when the includer happened to pull the header in first.
inline std::vector<int> make_empty() { return {}; }
