#pragma once

#include <vector>

inline std::vector<int> make_empty() { return {}; }
