// Seeded violation: a failpoint site lexically inside an OMP parallel
// region (both the braced-block and the plain-for forms are exercised).
#define RTD_FAILPOINT(site) \
  do {                      \
  } while (false)

void braced(int n) {
#pragma omp parallel
  {
    for (int i = 0; i < n; ++i) {
      RTD_FAILPOINT("engine.phase1");
    }
  }
}

void single_statement(int* out, int n) {
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) out[i] = RTD_FAILPOINT_DECLINES("x.y") ? 0 : i;
}

void serial_is_fine() {
  RTD_FAILPOINT("engine.phase2");  // outside any region: not a violation
}
