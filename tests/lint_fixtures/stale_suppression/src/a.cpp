int live_code() { return 42; }
