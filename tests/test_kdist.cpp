#include "core/kdist.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rt_dbscan.hpp"
#include "data/generators.hpp"

namespace rtd::core {
namespace {

TEST(Kdist, RejectsZeroK) {
  const std::vector<geom::Vec3> pts{{0, 0, 0}};
  EXPECT_THROW(kdist_graph(pts, 0), std::invalid_argument);
}

TEST(Kdist, EmptyInput) {
  const std::vector<geom::Vec3> pts;
  const auto r = kdist_graph(pts, 4);
  EXPECT_TRUE(r.sorted_kdist.empty());
  EXPECT_EQ(r.suggested_eps, 0.0f);
}

TEST(Kdist, GraphIsSortedDescending) {
  const auto dataset = data::taxi_gps(2000, 301);
  const auto r = kdist_graph(dataset.points, 4);
  ASSERT_EQ(r.sorted_kdist.size(), dataset.size());
  EXPECT_TRUE(std::is_sorted(r.sorted_kdist.begin(), r.sorted_kdist.end(),
                             std::greater<float>()));
  EXPECT_GT(r.suggested_eps, 0.0f);
}

TEST(Kdist, KneeIndexOfSyntheticElbow) {
  // A curve that drops steeply then flattens: knee at the bend.
  std::vector<float> curve;
  for (int i = 0; i < 20; ++i) {
    curve.push_back(100.0f - 5.0f * static_cast<float>(i));  // steep
  }
  for (int i = 0; i < 80; ++i) {
    curve.push_back(5.0f - 0.05f * static_cast<float>(i));  // flat tail
  }
  const std::size_t knee = knee_index_of(curve);
  EXPECT_GE(knee, 10u);
  EXPECT_LE(knee, 35u);
}

TEST(Kdist, KneeDegenerateInputs) {
  EXPECT_EQ(knee_index_of(std::vector<float>{}), 0u);
  EXPECT_EQ(knee_index_of(std::vector<float>{3.0f}), 0u);
  EXPECT_EQ(knee_index_of(std::vector<float>{3.0f, 1.0f}), 1u);
  // Constant curve: defined fallback (middle).
  const std::vector<float> flat(10, 2.0f);
  EXPECT_EQ(knee_index_of(flat), 5u);
}

TEST(Kdist, SuggestedEpsSeparatesBlobsFromNoise) {
  // Dense blobs + sparse noise: clustering with the suggested eps (and
  // minPts = k+1) must find roughly the planted blobs, clustering most
  // blob points and rejecting most of the background.
  const std::size_t n_blob = 4000;
  auto dataset = data::gaussian_blobs(n_blob, 5, 0.5f, 80.0f, 2, 302);
  auto noise = data::uniform_cube(400, 80.0f, 2, 303);
  dataset.points.insert(dataset.points.end(), noise.points.begin(),
                        noise.points.end());

  const std::uint32_t k = 4;
  const auto kd = kdist_graph(dataset.points, k);
  ASSERT_GT(kd.suggested_eps, 0.0f);

  const auto r =
      rt_dbscan(dataset.points, {kd.suggested_eps, k + 1});
  EXPECT_GE(r.clustering.cluster_count, 3u);
  EXPECT_LE(r.clustering.cluster_count, 60u);
  // Most blob points clustered.
  std::size_t blob_clustered = 0;
  for (std::size_t i = 0; i < n_blob; ++i) {
    blob_clustered += r.clustering.labels[i] != dbscan::kNoiseLabel;
  }
  EXPECT_GT(blob_clustered, n_blob * 9 / 10);
}

TEST(Kdist, LargerKGivesLargerEps) {
  const auto dataset = data::taxi_gps(3000, 304);
  const auto k4 = kdist_graph(dataset.points, 4);
  const auto k16 = kdist_graph(dataset.points, 16);
  EXPECT_GT(k16.suggested_eps, k4.suggested_eps * 0.8f)
      << "k-distances are monotone in k; the knee should not collapse";
}

}  // namespace
}  // namespace rtd::core
