#include "rt/radix_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace rtd::rt {
namespace {

void check_sorted_with_payload(std::vector<std::uint32_t> keys) {
  std::vector<std::uint32_t> values(keys.size());
  std::iota(values.begin(), values.end(), 0u);
  const std::vector<std::uint32_t> original = keys;

  radix_sort_pairs(keys, values);

  ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // The payload must carry the permutation: values[i] is the original index
  // of keys[i].
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(original[values[i]], keys[i]);
  }
  // And it must be a permutation.
  std::vector<std::uint32_t> sorted_values = values;
  std::sort(sorted_values.begin(), sorted_values.end());
  for (std::size_t i = 0; i < sorted_values.size(); ++i) {
    EXPECT_EQ(sorted_values[i], i);
  }
}

TEST(RadixSort, EmptyAndSingle) {
  check_sorted_with_payload({});
  check_sorted_with_payload({42});
}

TEST(RadixSort, SmallFixedInput) {
  check_sorted_with_payload({5, 3, 9, 1, 1, 0, 7});
}

TEST(RadixSort, AlreadySorted) {
  std::vector<std::uint32_t> keys(1000);
  std::iota(keys.begin(), keys.end(), 0u);
  check_sorted_with_payload(keys);
}

TEST(RadixSort, ReverseSorted) {
  std::vector<std::uint32_t> keys(1000);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<std::uint32_t>(keys.size() - i);
  }
  check_sorted_with_payload(keys);
}

TEST(RadixSort, AllEqual) {
  check_sorted_with_payload(std::vector<std::uint32_t>(5000, 7u));
}

TEST(RadixSort, RandomLarge) {
  Rng rng(11);
  std::vector<std::uint32_t> keys(200000);
  for (auto& k : keys) {
    k = static_cast<std::uint32_t>(rng.next_u64());
  }
  check_sorted_with_payload(keys);
}

TEST(RadixSort, Random30BitMortonRange) {
  Rng rng(12);
  std::vector<std::uint32_t> keys(100000);
  for (auto& k : keys) {
    k = static_cast<std::uint32_t>(rng.below(1u << 30));
  }
  check_sorted_with_payload(keys);
}

TEST(RadixSort, StabilityPreservesEqualKeyOrder) {
  // Many duplicate keys; payload of equal keys must stay in input order.
  Rng rng(13);
  std::vector<std::uint32_t> keys(50000);
  for (auto& k : keys) {
    k = static_cast<std::uint32_t>(rng.below(16));
  }
  std::vector<std::uint32_t> values(keys.size());
  std::iota(values.begin(), values.end(), 0u);
  const std::vector<std::uint32_t> original = keys;

  radix_sort_pairs(keys, values);

  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] == keys[i - 1]) {
      EXPECT_LT(values[i - 1], values[i]) << "instability at " << i;
    }
  }
  (void)original;
}

TEST(RadixSort, MatchesStdSortAcrossThreadCounts) {
  Rng rng(14);
  std::vector<std::uint32_t> base(30000);
  for (auto& k : base) k = static_cast<std::uint32_t>(rng.next_u64());
  std::vector<std::uint32_t> expected = base;
  std::sort(expected.begin(), expected.end());

  for (const int threads : {1, 2, 7, 24}) {
    ThreadCountGuard guard(threads);
    std::vector<std::uint32_t> keys = base;
    std::vector<std::uint32_t> values(keys.size());
    std::iota(values.begin(), values.end(), 0u);
    radix_sort_pairs(keys, values);
    EXPECT_EQ(keys, expected) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace rtd::rt
