#include "geom/eigen3.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace rtd::geom {
namespace {

void expect_is_eigenpair(const Sym3& m, float lambda, const Vec3& v,
                         float tol) {
  EXPECT_NEAR(length(v), 1.0f, 1e-4f);
  const Vec3 mv = m.multiply(v);
  const Vec3 lv = v * lambda;
  EXPECT_NEAR(mv.x, lv.x, tol);
  EXPECT_NEAR(mv.y, lv.y, tol);
  EXPECT_NEAR(mv.z, lv.z, tol);
}

TEST(Eigen3, DiagonalMatrix) {
  const Sym3 m{3.0f, 0, 0, 1.0f, 0, 2.0f};
  const Eigen3 e = eigen_symmetric3(m);
  EXPECT_NEAR(e.values[0], 1.0f, 1e-5f);
  EXPECT_NEAR(e.values[1], 2.0f, 1e-5f);
  EXPECT_NEAR(e.values[2], 3.0f, 1e-5f);
  expect_is_eigenpair(m, e.values[0], e.vectors[0], 1e-4f);
  expect_is_eigenpair(m, e.values[2], e.vectors[2], 1e-4f);
}

TEST(Eigen3, ScalarMatrix) {
  const Sym3 m{2.0f, 0, 0, 2.0f, 0, 2.0f};
  const Eigen3 e = eigen_symmetric3(m);
  for (const float v : e.values) EXPECT_NEAR(v, 2.0f, 1e-6f);
}

TEST(Eigen3, ZeroMatrix) {
  const Sym3 m{};
  const Eigen3 e = eigen_symmetric3(m);
  for (const float v : e.values) EXPECT_EQ(v, 0.0f);
}

TEST(Eigen3, KnownOffDiagonal) {
  // [[2,1,0],[1,2,0],[0,0,5]]: eigenvalues 1, 3, 5.
  const Sym3 m{2, 1, 0, 2, 0, 5};
  const Eigen3 e = eigen_symmetric3(m);
  EXPECT_NEAR(e.values[0], 1.0f, 1e-4f);
  EXPECT_NEAR(e.values[1], 3.0f, 1e-4f);
  EXPECT_NEAR(e.values[2], 5.0f, 1e-4f);
  expect_is_eigenpair(m, 1.0f, e.vectors[0], 1e-3f);
  expect_is_eigenpair(m, 5.0f, e.vectors[2], 1e-3f);
}

TEST(Eigen3, EigenvaluesSumToTrace) {
  Rng rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    Sym3 m;
    m.xx = rng.uniformf(-5, 5);
    m.xy = rng.uniformf(-5, 5);
    m.xz = rng.uniformf(-5, 5);
    m.yy = rng.uniformf(-5, 5);
    m.yz = rng.uniformf(-5, 5);
    m.zz = rng.uniformf(-5, 5);
    const Eigen3 e = eigen_symmetric3(m);
    EXPECT_NEAR(e.values[0] + e.values[1] + e.values[2], m.trace(), 1e-3f);
    EXPECT_LE(e.values[0], e.values[1] + 1e-5f);
    EXPECT_LE(e.values[1], e.values[2] + 1e-5f);
  }
}

TEST(Eigen3, RandomPsdEigenpairsVerify) {
  // Build PSD matrices as covariance of random point sets; verify both
  // extreme eigenpairs against the definition.
  Rng rng(102);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Vec3> pts;
    for (int i = 0; i < 30; ++i) {
      pts.push_back(Vec3{rng.uniformf(-2, 2), rng.uniformf(-2, 2),
                         rng.uniformf(-2, 2)});
    }
    const Sym3 cov = covariance3(pts.begin(), pts.end());
    const Eigen3 e = eigen_symmetric3(cov);
    EXPECT_GE(e.values[0], -1e-4f);  // PSD
    const float scale = std::max(1.0f, e.values[2]);
    expect_is_eigenpair(cov, e.values[0], e.vectors[0], 2e-3f * scale);
    expect_is_eigenpair(cov, e.values[2], e.vectors[2], 2e-3f * scale);
    // Vectors orthogonal.
    EXPECT_NEAR(dot(e.vectors[0], e.vectors[2]), 0.0f, 2e-2f);
  }
}

TEST(Covariance3, MeanAndSpread) {
  const std::vector<Vec3> pts{{1, 0, 0}, {-1, 0, 0}, {0, 0, 0}};
  Vec3 mean;
  const Sym3 cov = covariance3(pts.begin(), pts.end(), &mean);
  EXPECT_EQ(mean, (Vec3{0, 0, 0}));
  EXPECT_NEAR(cov.xx, 2.0f / 3.0f, 1e-6f);
  EXPECT_EQ(cov.yy, 0.0f);
  EXPECT_EQ(cov.zz, 0.0f);
}

TEST(Covariance3, EmptySetIsZero) {
  const std::vector<Vec3> pts;
  const Sym3 cov = covariance3(pts.begin(), pts.end());
  EXPECT_EQ(cov.trace(), 0.0f);
}

TEST(NormalEstimation, FlatPlaneNormalIsZ) {
  // Points on the z=0 plane: smallest-eigenvalue direction must be +-z.
  Rng rng(103);
  std::vector<Vec3> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back(Vec3::xy(rng.uniformf(-1, 1), rng.uniformf(-1, 1)));
  }
  const Sym3 cov = covariance3(pts.begin(), pts.end());
  const Vec3 n = normal_from_covariance(cov);
  EXPECT_NEAR(std::fabs(n.z), 1.0f, 1e-3f);
}

TEST(NormalEstimation, TiltedPlane) {
  // Plane x + y + z = 0: normal (1,1,1)/sqrt(3).
  Rng rng(104);
  std::vector<Vec3> pts;
  for (int i = 0; i < 200; ++i) {
    const float u = rng.uniformf(-1, 1);
    const float v = rng.uniformf(-1, 1);
    // Basis of the plane: (1,-1,0)/sqrt2 and (1,1,-2)/sqrt6.
    pts.push_back(Vec3{u * 0.7071f + v * 0.4082f,
                       -u * 0.7071f + v * 0.4082f, -v * 0.8165f});
  }
  const Sym3 cov = covariance3(pts.begin(), pts.end());
  const Vec3 n = normal_from_covariance(cov);
  const float align = std::fabs(dot(n, normalized(Vec3{1, 1, 1})));
  EXPECT_NEAR(align, 1.0f, 1e-2f);
}

TEST(SurfaceVariation, FlatVsIsotropic) {
  Rng rng(105);
  std::vector<Vec3> flat;
  std::vector<Vec3> ball;
  for (int i = 0; i < 300; ++i) {
    flat.push_back(Vec3::xy(rng.uniformf(-1, 1), rng.uniformf(-1, 1)));
    ball.push_back(Vec3{rng.uniformf(-1, 1), rng.uniformf(-1, 1),
                        rng.uniformf(-1, 1)});
  }
  const float sv_flat =
      surface_variation(covariance3(flat.begin(), flat.end()));
  const float sv_ball =
      surface_variation(covariance3(ball.begin(), ball.end()));
  EXPECT_LT(sv_flat, 0.01f);
  EXPECT_GT(sv_ball, 0.2f);
  EXPECT_LE(sv_ball, 1.0f / 3.0f + 1e-4f);
}

}  // namespace
}  // namespace rtd::geom
