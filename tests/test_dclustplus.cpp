#include "dbscan/dclustplus.hpp"

#include <gtest/gtest.h>

#include "data/generators.hpp"
#include "dbscan_test_util.hpp"

namespace rtd::dbscan {
namespace {

using testutil::expect_matches_reference;

TEST(DclustPlus, RejectsBadParams) {
  const std::vector<geom::Vec3> pts{{0, 0, 0}};
  EXPECT_THROW(dclust_plus(pts, {0.0f, 3}), std::invalid_argument);
  EXPECT_THROW(dclust_plus(pts, {1.0f, 0}), std::invalid_argument);
}

TEST(DclustPlus, EmptyInput) {
  const std::vector<geom::Vec3> pts;
  const auto r = dclust_plus(pts, {1.0f, 3});
  EXPECT_EQ(r.clustering.size(), 0u);
  EXPECT_EQ(r.chain_count, 0u);
}

TEST(DclustPlus, MatchesReferenceOnHandCheckedData) {
  const auto pts = testutil::two_squares_and_outlier();
  const Params params{1.5f, 3};
  const auto r = dclust_plus(pts, params);
  expect_matches_reference(pts, params, r.clustering, "dclust+");
  EXPECT_EQ(r.clustering.cluster_count, 2u);
}

TEST(DclustPlus, MatchesReferenceOnAmbiguousBorder) {
  const auto pts = testutil::ambiguous_border();
  const Params params{2.05f, 6};
  const auto r = dclust_plus(pts, params);
  expect_matches_reference(pts, params, r.clustering, "dclust+");
}

class DclustPlusDatasetTest
    : public ::testing::TestWithParam<std::tuple<data::PaperDataset, float,
                                                 std::uint32_t>> {};

TEST_P(DclustPlusDatasetTest, MatchesReference) {
  const auto [which, eps, min_pts] = GetParam();
  const auto dataset = data::make_paper_dataset(which, 3000, 79);
  const Params params{eps, min_pts};
  const auto r = dclust_plus(dataset.points, params);
  expect_matches_reference(dataset.points, params, r.clustering, "dclust+");
}

INSTANTIATE_TEST_SUITE_P(
    PaperDatasets, DclustPlusDatasetTest,
    ::testing::Values(
        std::make_tuple(data::PaperDataset::k3DRoad, 0.5f, 10u),
        std::make_tuple(data::PaperDataset::k3DRoad, 1.0f, 30u),
        std::make_tuple(data::PaperDataset::kPorto, 0.3f, 10u),
        std::make_tuple(data::PaperDataset::kNgsim, 0.05f, 10u),
        std::make_tuple(data::PaperDataset::k3DIono, 2.0f, 10u)));

TEST(DclustPlus, ChainCollisionsMergeOneCluster) {
  // One big connected blob forced through many chains: collisions must fuse
  // all chains into a single cluster.
  const auto dataset = data::single_blob(5000, 1.0f, 51);
  DclustPlusOptions opts;
  opts.chains_per_round = 64;
  const auto r = dclust_plus(dataset.points, {0.4f, 5}, opts);
  EXPECT_EQ(r.clustering.cluster_count, 1u);
  EXPECT_GT(r.chain_count, 1u);
  EXPECT_GT(r.collision_count, 0u);
}

TEST(DclustPlus, FewChainsStillCorrect) {
  const auto dataset = data::two_rings(3000, 52);
  const Params params{0.8f, 5};
  DclustPlusOptions opts;
  opts.chains_per_round = 2;
  const auto r = dclust_plus(dataset.points, params, opts);
  expect_matches_reference(dataset.points, params, r.clustering, "dclust+");
}

TEST(DclustPlus, SingleThreadMatchesParallel) {
  const auto dataset = data::taxi_gps(3000, 53);
  const Params params{0.3f, 10};
  DclustPlusOptions serial;
  serial.threads = 1;
  const auto a = dclust_plus(dataset.points, params, serial);
  const auto b = dclust_plus(dataset.points, params);
  const auto eq =
      check_equivalent(dataset.points, params, a.clustering, b.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.reason;
}

TEST(DclustPlus, AllNoiseDataset) {
  // Sparse uniform noise with tight eps: no clusters, no collisions needed.
  const auto dataset = data::uniform_cube(2000, 1000.0f, 2, 54);
  const auto r = dclust_plus(dataset.points, {0.5f, 5});
  EXPECT_EQ(r.clustering.cluster_count, 0u);
  EXPECT_EQ(r.clustering.noise_count(), dataset.size());
}

TEST(DclustPlus, ReportsPhaseTimes) {
  const auto dataset = data::taxi_gps(2000, 55);
  const auto r = dclust_plus(dataset.points, {0.3f, 10});
  EXPECT_GT(r.index_build_seconds, 0.0);
  EXPECT_GE(r.expansion_seconds, 0.0);
}

}  // namespace
}  // namespace rtd::dbscan
