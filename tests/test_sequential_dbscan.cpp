#include "dbscan/sequential.hpp"

#include <gtest/gtest.h>

#include "dbscan/equivalence.hpp"
#include "data/generators.hpp"
#include "dbscan_test_util.hpp"

namespace rtd::dbscan {
namespace {

using geom::Vec3;
using testutil::chain;
using testutil::two_squares_and_outlier;

TEST(SequentialDbscan, RejectsBadParams) {
  const std::vector<Vec3> pts{{0, 0, 0}};
  EXPECT_THROW(sequential_dbscan(pts, {0.0f, 3}), std::invalid_argument);
  EXPECT_THROW(sequential_dbscan(pts, {-1.0f, 3}), std::invalid_argument);
  EXPECT_THROW(sequential_dbscan(pts, {1.0f, 0}), std::invalid_argument);
}

TEST(SequentialDbscan, EmptyInput) {
  const std::vector<Vec3> pts;
  const auto c = sequential_dbscan(pts, {1.0f, 3});
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.cluster_count, 0u);
}

TEST(SequentialDbscan, SinglePointIsNoiseUnlessMinPtsOne) {
  const std::vector<Vec3> pts{{0, 0, 0}};
  const auto noise = sequential_dbscan(pts, {1.0f, 2});
  EXPECT_EQ(noise.labels[0], kNoiseLabel);
  EXPECT_EQ(noise.cluster_count, 0u);

  const auto core = sequential_dbscan(pts, {1.0f, 1});
  EXPECT_EQ(core.labels[0], 0);
  EXPECT_TRUE(core.is_core[0]);
  EXPECT_EQ(core.cluster_count, 1u);
}

TEST(SequentialDbscan, TwoSquaresAndOutlier) {
  const auto pts = two_squares_and_outlier();
  const auto c = sequential_dbscan(pts, {1.5f, 3});
  EXPECT_EQ(c.cluster_count, 2u);
  // First 4 points share a cluster.
  for (std::size_t i = 1; i < 4; ++i) EXPECT_EQ(c.labels[i], c.labels[0]);
  // Next 4 share a different cluster.
  for (std::size_t i = 5; i < 8; ++i) EXPECT_EQ(c.labels[i], c.labels[4]);
  EXPECT_NE(c.labels[0], c.labels[4]);
  // Outlier is noise.
  EXPECT_EQ(c.labels[8], kNoiseLabel);
  EXPECT_FALSE(c.is_core[8]);
  // All square points are core (each has 4 neighbors incl self >= 3).
  for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(c.is_core[i]) << i;
}

TEST(SequentialDbscan, ChainFormsSingleCluster) {
  const auto pts = chain(50);
  const auto c = sequential_dbscan(pts, {1.1f, 3});
  EXPECT_EQ(c.cluster_count, 1u);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(c.labels[i], 0);
  }
  // Endpoints have only 2 neighbors (self + 1): border points.
  EXPECT_FALSE(c.is_core[0]);
  EXPECT_FALSE(c.is_core[49]);
  EXPECT_TRUE(c.is_core[1]);
  EXPECT_TRUE(c.is_core[25]);
}

TEST(SequentialDbscan, ChainSplitsWhenEpsTooSmall) {
  auto pts = chain(20);
  pts.push_back(geom::Vec3::xy(30.0f, 0.0f));  // gap then second group
  pts.push_back(geom::Vec3::xy(31.0f, 0.0f));
  pts.push_back(geom::Vec3::xy(32.0f, 0.0f));
  const auto c = sequential_dbscan(pts, {1.1f, 3});
  EXPECT_EQ(c.cluster_count, 2u);
  EXPECT_NE(c.labels[0], c.labels[21]);
}

TEST(SequentialDbscan, MinPtsOneMakesEverythingCore) {
  const auto pts = two_squares_and_outlier();
  const auto c = sequential_dbscan(pts, {1.5f, 1});
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE(c.is_core[i]);
    EXPECT_NE(c.labels[i], kNoiseLabel);
  }
  // The outlier forms its own singleton cluster.
  EXPECT_EQ(c.cluster_count, 3u);
}

TEST(SequentialDbscan, HugeMinPtsMakesEverythingNoise) {
  const auto pts = two_squares_and_outlier();
  const auto c = sequential_dbscan(pts, {1.5f, 100});
  EXPECT_EQ(c.cluster_count, 0u);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(c.labels[i], kNoiseLabel);
  }
}

TEST(SequentialDbscan, DuplicatePointsClusterTogether) {
  std::vector<Vec3> pts(10, Vec3::xy(1.0f, 1.0f));
  const auto c = sequential_dbscan(pts, {0.5f, 5});
  EXPECT_EQ(c.cluster_count, 1u);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE(c.is_core[i]);
    EXPECT_EQ(c.labels[i], 0);
  }
}

TEST(SequentialDbscan, ResultIsInternallyValid) {
  const auto dataset = data::taxi_gps(3000, 21);
  const Params params{0.3f, 10};
  const auto c = sequential_dbscan(dataset.points, params);
  const auto valid = check_valid(dataset.points, params, c);
  EXPECT_TRUE(valid.equivalent) << valid.reason;
  EXPECT_GT(c.cluster_count, 0u);
}

TEST(SequentialDbscan, ValidAcrossParameterSweep) {
  const auto dataset = data::gaussian_blobs(2000, 5, 0.8f, 40.0f, 2, 22);
  for (const float eps : {0.2f, 0.5f, 1.5f}) {
    for (const std::uint32_t min_pts : {2u, 5u, 20u}) {
      const Params params{eps, min_pts};
      const auto c = sequential_dbscan(dataset.points, params);
      const auto valid = check_valid(dataset.points, params, c);
      EXPECT_TRUE(valid.equivalent)
          << "eps=" << eps << " minPts=" << min_pts << ": " << valid.reason;
    }
  }
}

TEST(SequentialDbscan, TwoRingsSeparateClusters) {
  const auto dataset = data::two_rings(4000, 23);
  const auto c = sequential_dbscan(dataset.points, {0.8f, 5});
  // The two rings are non-convex clusters; DBSCAN should find at least the
  // two of them (noise fraction may add small extra clusters).
  EXPECT_GE(c.cluster_count, 2u);
  EXPECT_LT(c.noise_count(), dataset.size() / 2);
}

TEST(SequentialDbscan, BreakdownTimingsSum) {
  const auto dataset = data::taxi_gps(2000, 24);
  const auto c = sequential_dbscan(dataset.points, {0.3f, 10});
  EXPECT_GT(c.timings.total_seconds, 0.0);
  EXPECT_LE(c.timings.index_build_seconds + c.timings.clustering_seconds(),
            c.timings.total_seconds * 1.01 + 1e-6);
}

}  // namespace
}  // namespace rtd::dbscan
