#include "data/io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/generators.hpp"

namespace rtd::data {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rtd_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, SaveLoadRoundTrip2D) {
  const auto original = taxi_gps(500, 17);
  save_csv(original, path("d2.csv"));
  const auto loaded = load_csv(path("d2.csv"), "roundtrip");
  EXPECT_EQ(loaded.dims, 2);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(loaded.points[i].x, original.points[i].x, 1e-4f);
    EXPECT_NEAR(loaded.points[i].y, original.points[i].y, 1e-4f);
    EXPECT_EQ(loaded.points[i].z, 0.0f);
  }
}

TEST_F(IoTest, SaveLoadRoundTrip3D) {
  const auto original = ionosphere3d(300, 18);
  save_csv(original, path("d3.csv"));
  const auto loaded = load_csv(path("d3.csv"));
  EXPECT_EQ(loaded.dims, 3);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(loaded.points[i].z, original.points[i].z, 1e-2f);
  }
}

TEST_F(IoTest, LoadSkipsHeader) {
  {
    std::ofstream f(path("h.csv"));
    f << "x,y\n1.0,2.0\n3.0,4.0\n";
  }
  const auto d = load_csv(path("h.csv"));
  ASSERT_EQ(d.size(), 2u);
  EXPECT_FLOAT_EQ(d.points[0].x, 1.0f);
  EXPECT_FLOAT_EQ(d.points[1].y, 4.0f);
}

TEST_F(IoTest, LoadWithoutHeaderWorks) {
  {
    std::ofstream f(path("nh.csv"));
    f << "1.5,2.5\n3.5,4.5\n";
  }
  const auto d = load_csv(path("nh.csv"));
  ASSERT_EQ(d.size(), 2u);
  EXPECT_FLOAT_EQ(d.points[0].x, 1.5f);
}

TEST_F(IoTest, LoadRejectsBadColumnCounts) {
  {
    std::ofstream f(path("bad.csv"));
    f << "1,2\n1,2,3,4\n";
  }
  EXPECT_THROW(load_csv(path("bad.csv")), std::runtime_error);
}

TEST_F(IoTest, LoadRejectsInconsistentDims) {
  {
    std::ofstream f(path("mixed.csv"));
    f << "1,2\n1,2,3\n";
  }
  EXPECT_THROW(load_csv(path("mixed.csv")), std::runtime_error);
}

TEST_F(IoTest, LoadRejectsNonNumericBody) {
  {
    std::ofstream f(path("alpha.csv"));
    f << "1,2\nfoo,bar\n";
  }
  EXPECT_THROW(load_csv(path("alpha.csv")), std::runtime_error);
}

TEST_F(IoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_csv(path("nope.csv")), std::runtime_error);
}

TEST_F(IoTest, EmptyFileGivesEmptyDataset) {
  {
    std::ofstream f(path("empty.csv"));
  }
  const auto d = load_csv(path("empty.csv"));
  EXPECT_EQ(d.size(), 0u);
}

TEST_F(IoTest, SaveLabeledCsvWritesLabels) {
  const auto d = taxi_gps(10, 19);
  std::vector<std::int32_t> labels(10, 3);
  labels[0] = -1;
  save_labeled_csv(d, labels, path("labeled.csv"));

  std::ifstream f(path("labeled.csv"));
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x,y,label");
  std::getline(f, line);
  EXPECT_NE(line.find(",-1"), std::string::npos);
}

TEST_F(IoTest, LoadRejectsNonFiniteLiterals) {
  {
    std::ofstream f(path("inf.csv"));
    f << "1,2\ninf,4\n";
  }
  {
    std::ofstream f(path("nan.csv"));
    f << "1,2\n3,nan\n";
  }
  EXPECT_THROW(load_csv(path("inf.csv")), std::runtime_error);
  EXPECT_THROW(load_csv(path("nan.csv")), std::runtime_error);
}

TEST_F(IoTest, LoadRejectsOverflowToInfinity) {
  {
    std::ofstream f(path("huge.csv"));
    f << "1,2\n1e999,4\n";
  }
  EXPECT_THROW(load_csv(path("huge.csv")), std::runtime_error);
}

TEST_F(IoTest, LoadRejectsTrailingGarbageInCell) {
  {
    std::ofstream f(path("junk.csv"));
    f << "1,2\n3.5x,4\n";
  }
  EXPECT_THROW(load_csv(path("junk.csv")), std::runtime_error);
}

TEST_F(IoTest, LoadRejectsTruncatedRow) {
  {
    std::ofstream f(path("trunc.csv"));
    f << "1,2\n3\n";  // a write cut off mid-record
  }
  EXPECT_THROW(load_csv(path("trunc.csv")), std::runtime_error);
}

TEST_F(IoTest, LoadErrorNamesTheOffendingRecord) {
  {
    std::ofstream f(path("named.csv"));
    f << "1,2\n3,4\nnan,6\n";
  }
  try {
    load_csv(path("named.csv"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("nan"), std::string::npos) << what;
  }
}

TEST_F(IoTest, SaveLabeledCsvRejectsSizeMismatch) {
  const auto d = taxi_gps(10, 20);
  const std::vector<std::int32_t> labels(5, 0);
  EXPECT_THROW(save_labeled_csv(d, labels, path("x.csv")),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtd::data
